//! Experiment runners shared by the figure/table harnesses.

use std::sync::Arc;

use turbopool_bufpool::{AdmissionKind, PolicyStats, ReplacementKind, ShardCount};
use turbopool_core::metrics::SsdMetricsSnapshot;
use turbopool_engine::Database;
use turbopool_iosim::{Time, HOUR, MILLISECOND, MINUTE};
use turbopool_workload::driver::{CheckpointClient, CleanerClient, Driver, ThroughputRecorder};
use turbopool_workload::scenario::Design;
use turbopool_workload::{tpcc::Tpcc, tpce::Tpce};

/// Which OLTP benchmark to run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum OltpKind {
    /// TPC-C with the given scaled warehouse count.
    TpcC { warehouses: u64 },
    /// TPC-E with the given scaled customer count.
    TpcE { customers: u64 },
}

/// Run configuration.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Virtual run length.
    pub duration: Time,
    /// Terminal count.
    pub clients: usize,
    /// LC λ (dirty fraction threshold).
    pub lambda: f64,
    /// Checkpoint interval; `None` disables checkpointing (the paper turns
    /// it off for TPC-C).
    pub checkpoint: Option<Time>,
    /// Device traffic series bucket (Figure 8); `None` disables.
    pub io_series: Option<Time>,
    /// DRAM replacement policy (the paper's LRU-2 by default).
    pub replacement: ReplacementKind,
    /// SSD admission policy (the paper's per-design rule by default).
    pub admission: AdmissionKind,
    /// DRAM pool frames override (`None` = the paper's scaled size).
    /// The policy arena shrinks the pools so replacement and admission
    /// actually churn within a short run.
    pub mem_frames: Option<usize>,
    /// SSD frames override (`None` = the paper's scaled size).
    pub ssd_frames: Option<u64>,
    /// DRAM pool page-table lock stripes (`Auto` = legacy single latch
    /// until a hint is configured; `Fixed(1)` pins legacy explicitly).
    pub pool_shards: ShardCount,
    /// TAC buffer-table lock stripes (extent-routed).
    pub tac_shards: ShardCount,
}

impl RunOptions {
    /// The paper's TPC-C settings: 10 hours, λ = 50%, checkpointing off.
    pub fn tpcc(duration: Time) -> Self {
        RunOptions {
            duration,
            clients: 25,
            lambda: 0.5,
            checkpoint: None,
            io_series: None,
            replacement: ReplacementKind::Lru2,
            admission: AdmissionKind::DesignDefault,
            mem_frames: None,
            ssd_frames: None,
            pool_shards: ShardCount::Auto,
            tac_shards: ShardCount::Auto,
        }
    }

    /// The paper's TPC-E settings: λ = 1%, checkpoint every ~40 minutes.
    pub fn tpce(duration: Time) -> Self {
        RunOptions {
            duration,
            clients: 25,
            lambda: 0.01,
            checkpoint: Some(40 * MINUTE),
            io_series: None,
            replacement: ReplacementKind::Lru2,
            admission: AdmissionKind::DesignDefault,
            mem_frames: None,
            ssd_frames: None,
            pool_shards: ShardCount::Auto,
            tac_shards: ShardCount::Auto,
        }
    }
}

/// Everything a harness needs from one completed OLTP run.
pub struct OltpRun {
    /// Design that ran.
    pub design: Design,
    /// The metric recorder (NewOrder commits / TradeResult commits).
    pub metric: Arc<ThroughputRecorder>,
    /// Virtual run length.
    pub duration: Time,
    /// Metric rate over the last hour (per minute for TPC-C, converted by
    /// callers for tpsE).
    pub last_hour_per_min: f64,
    /// Six-minute throughput series (per-minute rates).
    pub series: Vec<(f64, f64)>,
    /// SSD-manager counters (None for noSSD).
    pub ssd: Option<SsdMetricsSnapshot>,
    /// Buffer pool counters.
    pub pool: turbopool_bufpool::PoolStats,
    /// DRAM replacement-policy counters (all zero for plain LRU-2).
    pub policy: PolicyStats,
    /// Disk-group device totals.
    pub disk: turbopool_iosim::StatSnapshot,
    /// SSD device totals.
    pub ssd_dev: turbopool_iosim::StatSnapshot,
    /// Disk traffic series (if `io_series` was set).
    pub disk_series: Vec<(Time, u64, u64)>,
    /// SSD traffic series (if `io_series` was set).
    pub ssd_series: Vec<(Time, u64, u64)>,
    /// TAC wasted (invalid) SSD frames at end of run.
    pub tac_invalid_frames: u64,
}

/// Build + bulk load one design's database and attach its terminals plus
/// the checkpointer/cleaner pseudo-clients, all inside driver `domain`.
/// Each call owns a whole Database, so distinct domains are share-nothing
/// and the parallel driver may step them on different worker threads.
fn attach(
    kind: OltpKind,
    design: Design,
    opts: &RunOptions,
    driver: &mut Driver,
    domain: usize,
    metric: &Arc<ThroughputRecorder>,
) -> Arc<Database> {
    let tweak = |spec: &mut turbopool_workload::scenario::SystemSpec| {
        spec.replacement = opts.replacement;
        spec.admission = opts.admission;
        spec.pool_shards = opts.pool_shards;
        spec.tac_shards = opts.tac_shards;
        if let Some(frames) = opts.mem_frames {
            spec.mem_frames = frames;
        }
        if let Some(frames) = opts.ssd_frames {
            spec.ssd_frames = frames;
        }
    };
    let db = match kind {
        OltpKind::TpcC { warehouses } => {
            let t = Arc::new(Tpcc::setup_tweak(design, warehouses, opts.lambda, tweak));
            for c in 0..opts.clients {
                driver.add_in_domain(domain, 0, Box::new(t.client(c as u64, Arc::clone(metric))));
            }
            Arc::clone(&t.db)
        }
        OltpKind::TpcE { customers } => {
            let t = Arc::new(Tpce::setup_tweak(design, customers, opts.lambda, tweak));
            for c in 0..opts.clients {
                driver.add_in_domain(domain, 0, Box::new(t.client(c as u64, Arc::clone(metric))));
            }
            Arc::clone(&t.db)
        }
    };

    if let Some(bucket) = opts.io_series {
        db.io().enable_series(bucket);
    }
    if let Some(interval) = opts.checkpoint {
        driver.add_in_domain(
            domain,
            0,
            Box::new(CheckpointClient::new(Arc::clone(&db), interval)),
        );
    }
    if let Some(cleaner) = CleanerClient::for_db(&db) {
        driver.add_in_domain(domain, 0, Box::new(cleaner));
    }
    db
}

/// Collect every statistic the figures need from a finished run.
fn collect(
    design: Design,
    metric: Arc<ThroughputRecorder>,
    opts: &RunOptions,
    db: &Database,
) -> OltpRun {
    let last_hour_start = opts.duration.saturating_sub(HOUR);
    let last_hour_per_min = metric.rate_between(last_hour_start, opts.duration, MINUTE);
    // Drop the trailing partial bucket (overshoot artifacts).
    let mut series = metric.series_per_minute();
    series.truncate((opts.duration / (6 * MINUTE)) as usize);
    OltpRun {
        design,
        duration: opts.duration,
        last_hour_per_min,
        series,
        ssd: db.ssd_metrics(),
        pool: db.pool_stats(),
        policy: db.policy_stats(),
        disk: db.io().disk_stats(),
        ssd_dev: db.io().ssd_stats(),
        disk_series: db.io().disk_series(),
        ssd_series: db.io().ssd_series(),
        tac_invalid_frames: db.tac_cache().map(|t| t.invalid_frames()).unwrap_or(0),
        metric,
    }
}

/// Run one OLTP experiment end to end: build + bulk load the database,
/// attach terminals plus the checkpointer/cleaner pseudo-clients, run for
/// `opts.duration` of virtual time, and collect every statistic the
/// figures need.
pub fn run_oltp(kind: OltpKind, design: Design, opts: &RunOptions) -> OltpRun {
    let metric = ThroughputRecorder::new(6 * MINUTE);
    let mut driver = Driver::new();
    let db = attach(kind, design, opts, &mut driver, 0, &metric);
    driver.run_until(opts.duration);
    collect(design, metric, opts, &db)
}

/// Several designs' results plus the shared-driver totals.
pub struct OltpSet {
    /// One completed run per requested design, in input order.
    pub runs: Vec<OltpRun>,
    /// Total client steps executed across all designs.
    pub steps: u64,
    /// Worker threads the driver was given.
    pub threads: usize,
    /// Wall-clock seconds of the drive phase alone (setup/bulk-load is
    /// serial and excluded, so scaling numbers measure the simulation).
    pub drive_secs: f64,
}

/// How many minimum-service quanta one parallel window spans. Windows
/// only bound how far share-nothing domains drift apart in virtual time
/// (bit-identity holds for any width — see the driver docs), so a wide
/// window amortizes the per-window merge without changing results.
const WINDOW_QUANTA: u64 = 4096;

/// Run one OLTP experiment per design *concurrently*: each design gets
/// its own database and driver domain, and the parallel driver steps the
/// domains on up to `threads` worker threads. Results are bit-identical
/// to running `run_oltp` per design (same seeds, same virtual clocks) —
/// only wall-clock time changes.
pub fn run_oltp_set(
    kind: OltpKind,
    designs: &[Design],
    opts: &RunOptions,
    threads: usize,
) -> OltpSet {
    let mut driver = Driver::new();
    let mut handles = Vec::with_capacity(designs.len());
    for (domain, &design) in designs.iter().enumerate() {
        let metric = ThroughputRecorder::new(6 * MINUTE);
        let db = attach(kind, design, opts, &mut driver, domain, &metric);
        handles.push((design, metric, db));
    }
    let min_service = handles
        .iter()
        .map(|(_, _, db)| db.io().setup().min_service_ns())
        .min()
        .unwrap_or(MILLISECOND);
    driver.set_lookahead(min_service.saturating_mul(WINDOW_QUANTA));
    let timer = crate::json::WallTimer::start();
    driver.run_until_parallel(opts.duration, threads);
    let drive_secs = timer.secs();
    let steps = driver.steps();
    let runs = handles
        .into_iter()
        .map(|(design, metric, db)| collect(design, metric, opts, &db))
        .collect();
    OltpSet {
        runs,
        steps,
        threads,
        drive_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_tpcc_run_produces_metrics() {
        let opts = RunOptions {
            duration: 30 * MINUTE,
            clients: 4,
            ..RunOptions::tpcc(0)
        };
        let run = run_oltp(OltpKind::TpcC { warehouses: 2 }, Design::Dw, &opts);
        assert!(run.metric.total() > 0);
        assert!(run.ssd.is_some());
        assert!(!run.series.is_empty());
    }

    #[test]
    fn oltp_set_matches_individual_runs() {
        let opts = RunOptions {
            duration: 20 * MINUTE,
            clients: 3,
            ..RunOptions::tpcc(0)
        };
        let kind = OltpKind::TpcC { warehouses: 2 };
        let designs = [Design::Dw, Design::Lc];
        let set = run_oltp_set(kind, &designs, &opts, 2);
        assert_eq!(set.runs.len(), 2);
        for (i, &design) in designs.iter().enumerate() {
            let solo = run_oltp(kind, design, &opts);
            let par = &set.runs[i];
            assert_eq!(par.design, design);
            assert_eq!(par.metric.total(), solo.metric.total(), "{design:?}");
            assert_eq!(par.ssd, solo.ssd, "{design:?}");
            assert_eq!(par.pool, solo.pool, "{design:?}");
            assert_eq!(par.disk, solo.disk, "{design:?}");
            assert_eq!(par.ssd_dev, solo.ssd_dev, "{design:?}");
        }
    }
}
