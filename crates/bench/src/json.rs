//! Tiny std-only JSON writer for machine-readable bench results.
//!
//! Every bench target emits a `BENCH_<name>.json` file at the repo root
//! recording wall-clock seconds, client steps/sec, virtual-time
//! throughput and the thread count, so the perf trajectory is tracked
//! run-over-run (ISSUE 4). The model is deliberately minimal: enough
//! JSON to hold numbers, strings, arrays and objects — not a general
//! serializer.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use turbopool_iosim::Time;

/// A JSON value. Non-finite numbers serialize as `null` (JSON has no
/// NaN/Infinity).
#[derive(Clone, Debug)]
pub enum Json {
    Null,
    Bool(bool),
    Int(u64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn render(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    /// Compact JSON serialization.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.render(&mut s);
        f.write_str(&s)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Wall-clock stopwatch for bench reporting. This is the one sanctioned
/// wall-clock reader in the workspace outside the L1 allowlist: wall
/// seconds never feed back into the simulation, they only annotate the
/// emitted JSON.
pub struct WallTimer {
    start: std::time::Instant,
}

impl WallTimer {
    #[allow(clippy::new_without_default)]
    pub fn start() -> Self {
        WallTimer {
            // Bench reporting measures real elapsed time by definition;
            // the value never influences virtual-time results.
            // lint: allow(wallclock)
            start: std::time::Instant::now(),
        }
    }

    /// Seconds since `start()`.
    pub fn secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// Accumulates one bench's results and writes `BENCH_<name>.json`.
pub struct BenchReport {
    name: String,
    fields: Vec<(String, Json)>,
}

impl BenchReport {
    pub fn new(name: &str) -> Self {
        BenchReport {
            name: name.to_string(),
            fields: vec![("bench".to_string(), Json::Str(name.to_string()))],
        }
    }

    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        self.fields.push((key.to_string(), value));
        self
    }

    pub fn num(&mut self, key: &str, value: f64) -> &mut Self {
        self.set(key, Json::Num(value))
    }

    pub fn int(&mut self, key: &str, value: u64) -> &mut Self {
        self.set(key, Json::Int(value))
    }

    pub fn str_field(&mut self, key: &str, value: &str) -> &mut Self {
        self.set(key, Json::Str(value.to_string()))
    }

    /// The standard block every bench records: wall seconds, worker
    /// thread count, virtual time simulated, driver steps, and the two
    /// derived throughput numbers (steps/sec and virtual-vs-wall speed).
    pub fn standard(
        &mut self,
        wall_secs: f64,
        threads: usize,
        virtual_ns: Time,
        steps: u64,
    ) -> &mut Self {
        let virtual_secs = virtual_ns as f64 / 1e9;
        self.num("wall_secs", wall_secs)
            .int("threads", threads as u64)
            .num("virtual_secs", virtual_secs)
            .int("steps", steps)
            .num("steps_per_sec", safe_div(steps as f64, wall_secs))
            .num("virtual_per_wall", safe_div(virtual_secs, wall_secs))
    }

    /// Write `BENCH_<name>.json` into the repo root, returning the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = repo_root().join(format!("BENCH_{}.json", self.name));
        let json = Json::Obj(self.fields.clone());
        std::fs::write(&path, json.to_string() + "\n")?;
        Ok(path)
    }

    /// `write()`, logging instead of failing — benches should still
    /// print their tables if the repo root is read-only.
    pub fn emit(&self) {
        match self.write() {
            Ok(path) => println!("\nwrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write BENCH_{}.json: {e}", self.name),
        }
    }
}

fn safe_div(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// The workspace root (two levels up from this crate's manifest).
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the workspace root")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_json() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Int(3)),
            ("b".into(), Json::Num(1.5)),
            (
                "c".into(),
                Json::Arr(vec![Json::Str("x\"y".into()), Json::Bool(true), Json::Null]),
            ),
        ]);
        assert_eq!(v.to_string(), r#"{"a":3,"b":1.5,"c":["x\"y",true,null]}"#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn control_chars_are_escaped() {
        assert_eq!(
            Json::Str("a\nb\u{1}".into()).to_string(),
            "\"a\\nb\\u0001\""
        );
    }

    #[test]
    fn report_shape_is_stable() {
        let mut r = BenchReport::new("unit");
        r.standard(2.0, 4, 3_000_000_000, 100);
        let json = Json::Obj(r.fields.clone()).to_string();
        assert!(json.contains(r#""bench":"unit""#));
        assert!(json.contains(r#""threads":4"#));
        assert!(json.contains(r#""steps_per_sec":50"#));
        assert!(json.contains(r#""virtual_secs":3"#));
    }

    #[test]
    fn repo_root_has_workspace_manifest() {
        let manifest = std::fs::read_to_string(repo_root().join("Cargo.toml")).unwrap();
        assert!(manifest.contains("[workspace]"));
    }

    #[test]
    fn wall_timer_is_monotonic() {
        let t = WallTimer::start();
        assert!(t.secs() >= 0.0);
    }
}
