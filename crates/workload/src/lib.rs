//! Workload generators and the discrete-event driver.
//!
//! This crate turns the storage stack into a benchmarkable system: a
//! deterministic earliest-clock-first driver multiplexes logical clients
//! (transaction streams, the checkpointer, the LC cleaner thread) over
//! virtual time, and three TPC-like generators reproduce the workload
//! properties the paper's evaluation depends on:
//!
//! * **TPC-C-lite** — update-intensive, highly skewed OLTP (tpmC);
//! * **TPC-E-lite** — read-intensive, broad-working-set OLTP (tpsE);
//! * **TPC-H-lite** — scan-dominated DSS with index-lookup queries, power
//!   and throughput tests (QphH).
//!
//! All scenario sizes are the paper's divided by [`scenario::SCALE`], and
//! all device service times are multiplied by the same factor, so every
//! ratio the evaluation depends on (hit rates, ramp-up shape, crossovers)
//! is preserved while a "10-hour" run finishes in seconds of wall time.

#![forbid(unsafe_code)]

pub mod driver;
pub(crate) mod pool;
pub mod rand_util;
pub mod scenario;
pub mod synthetic;
pub mod tpcc;
pub mod tpce;
pub mod tpch;

pub use driver::{CheckpointClient, CleanerClient, Client, Driver, StepResult, ThroughputRecorder};
pub use scenario::{build_db, Design, SystemSpec, SCALE};
