//! Scaled reconstruction of the paper's system under test.
//!
//! Every *size* (database, DRAM pool, SSD pool) is the paper's divided by
//! [`SCALE`], and every device *service time* is multiplied by [`SCALE`].
//! Rescaling sizes and rates by the same factor leaves all the ratios that
//! determine the evaluation's shape — hit rates, working-set-vs-SSD
//! crossovers, ramp-up duration relative to the run, λ-threshold dynamics —
//! exactly where the paper had them, while absolute throughput divides by
//! `SCALE` (reported numbers are "scaled tpmC/tpsE/QphH").

use std::sync::Arc;

use turbopool_bufpool::{AdmissionKind, ReplacementKind, ShardCount};
use turbopool_core::{MultiPageMode, SsdConfig, SsdDesign};
use turbopool_engine::{Database, DbConfig};
use turbopool_iosim::DeviceSetup;

/// The common scale factor: sizes ÷ 1000, service times × 1000.
pub const SCALE: f64 = 1000.0;

/// Page size (matches the paper's 8 KB pages — pages are not scaled).
pub const PAGE_SIZE: usize = 8192;

/// DRAM dedicated to the DBMS: 20 GB → 2,621,440 pages / SCALE.
pub const MEM_FRAMES: usize = 2621;

/// SSD buffer pool: 140 GB → 18,350,080 frames / SCALE (Table 2's `S`).
pub const SSD_FRAMES: u64 = 18350;

/// Pages per paper-gigabyte at this scale (2^30 / 8192 / 1000).
pub const PAGES_PER_GB: f64 = 131.072;

/// System design under test (Figure 5's series).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Design {
    NoSsd,
    Cw,
    Dw,
    Lc,
    Tac,
}

impl Design {
    pub fn label(self) -> &'static str {
        match self {
            Design::NoSsd => "noSSD",
            Design::Cw => "CW",
            Design::Dw => "DW",
            Design::Lc => "LC",
            Design::Tac => "TAC",
        }
    }

    /// All designs in the paper's plotting order.
    pub fn all() -> [Design; 5] {
        [
            Design::Dw,
            Design::Lc,
            Design::Tac,
            Design::Cw,
            Design::NoSsd,
        ]
    }

    /// The three designs Figure 5 plots (CW omitted as in the paper).
    pub fn figure5() -> [Design; 3] {
        [Design::Dw, Design::Lc, Design::Tac]
    }

    fn ssd_design(self) -> Option<SsdDesign> {
        match self {
            Design::NoSsd => None,
            Design::Cw => Some(SsdDesign::CleanWrite),
            Design::Dw => Some(SsdDesign::DualWrite),
            Design::Lc => Some(SsdDesign::LazyCleaning),
            Design::Tac => Some(SsdDesign::Tac),
        }
    }
}

/// Full specification of one system configuration.
#[derive(Clone, Debug)]
pub struct SystemSpec {
    pub design: Design,
    /// Database capacity in (scaled) pages, including growth headroom.
    pub db_pages: u64,
    /// DRAM pool frames.
    pub mem_frames: usize,
    /// SSD frames (`S`).
    pub ssd_frames: u64,
    /// LC dirty-fraction threshold λ.
    pub lambda: f64,
    /// Aggressive-filling threshold τ.
    pub tau: f64,
    /// Throttle-control threshold μ.
    pub mu: usize,
    /// SSD partition count N.
    pub partitions: usize,
    /// Multi-page read handling (Trim in the paper's final design).
    pub multipage: MultiPageMode,
    /// Warm-restart extension: persist/re-adopt the SSD buffer table
    /// across restarts (off in the paper).
    pub warm_restart: bool,
    /// DRAM replacement policy (the paper's LRU-2 by default).
    pub replacement: ReplacementKind,
    /// SSD admission policy (the paper's per-design rule by default).
    pub admission: AdmissionKind,
    /// Lock stripes for the DRAM pool page table (`Fixed(1)` = legacy
    /// single latch; `Auto` resolves against the engine's shard hint of 1).
    pub pool_shards: ShardCount,
    /// Lock stripes for the TAC buffer table (extent-routed).
    pub tac_shards: ShardCount,
    /// Deterministic seed for the workload RNG streams.
    pub seed: u64,
}

impl SystemSpec {
    /// The paper's configuration for a database of `db_pages` pages.
    pub fn paper(design: Design, db_pages: u64) -> Self {
        SystemSpec {
            design,
            db_pages,
            mem_frames: MEM_FRAMES,
            ssd_frames: SSD_FRAMES,
            lambda: 0.5,
            tau: 0.95,
            mu: 100,
            partitions: 16,
            multipage: MultiPageMode::Trim,
            warm_restart: false,
            replacement: ReplacementKind::Lru2,
            admission: AdmissionKind::DesignDefault,
            pool_shards: ShardCount::Auto,
            tac_shards: ShardCount::Auto,
            seed: 0x5EED,
        }
    }
}

/// Open a database configured per `spec` over time-scaled paper devices.
pub fn build_db(spec: &SystemSpec) -> Arc<Database> {
    let mut cfg = DbConfig::new(PAGE_SIZE, spec.db_pages, spec.mem_frames);
    cfg.replacement = spec.replacement;
    cfg.pool_shards = spec.pool_shards;
    cfg.tac_shards = spec.tac_shards;
    cfg.ssd = spec.design.ssd_design().map(|d| {
        let mut s = SsdConfig::new(d, spec.ssd_frames);
        s.lambda = spec.lambda;
        s.tau = spec.tau;
        s.mu = spec.mu;
        s.partitions = spec.partitions;
        s.multipage = spec.multipage;
        s.warm_restart = spec.warm_restart;
        s.admission = spec.admission;
        s
    });
    cfg.devices = Some(DeviceSetup::paper_time_scaled(
        PAGE_SIZE,
        spec.db_pages,
        spec.ssd_frames.max(1),
        SCALE,
    ));
    Arc::new(Database::open(cfg))
}

/// Convert paper gigabytes to scaled pages.
pub fn gb_to_pages(gb: f64) -> u64 {
    (gb * PAGES_PER_GB).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_sizes_preserve_paper_ratios() {
        // SSD pool (140 GB) vs DRAM pool (20 GB) = 7x; vs 200 GB DB ≈ 0.7.
        let ssd_over_mem = SSD_FRAMES as f64 / MEM_FRAMES as f64;
        assert!((ssd_over_mem - 7.0).abs() < 0.01, "{ssd_over_mem}");
        let db200 = gb_to_pages(200.0);
        let ratio = SSD_FRAMES as f64 / db200 as f64;
        assert!((ratio - 0.7).abs() < 0.01, "{ratio}");
    }

    #[test]
    fn build_db_wires_the_requested_design() {
        let spec = SystemSpec {
            db_pages: 256,
            mem_frames: 16,
            ssd_frames: 32,
            ..SystemSpec::paper(Design::Lc, 0)
        };
        let db = build_db(&spec);
        assert!(db.ssd_manager().is_some());
        assert_eq!(
            db.ssd_manager().unwrap().config().design,
            SsdDesign::LazyCleaning
        );
        let spec = SystemSpec {
            design: Design::Tac,
            ..spec
        };
        let db = build_db(&spec);
        assert!(db.tac_cache().is_some());
        let spec = SystemSpec {
            design: Design::NoSsd,
            ..spec
        };
        let db = build_db(&spec);
        assert!(db.ssd_manager().is_none() && db.tac_cache().is_none());
    }

    #[test]
    fn time_scaled_devices_are_slower() {
        let spec = SystemSpec {
            db_pages: 64,
            mem_frames: 8,
            ssd_frames: 8,
            ..SystemSpec::paper(Design::NoSsd, 0)
        };
        let db = build_db(&spec);
        let rr = db.io().setup().disk_profile.rand_read_ns;
        // 985 us * 1000 ≈ 985 ms per aggregate random read.
        assert!(rr > 900_000_000, "{rr}");
    }
}
