//! TPC-E-lite: the read-intensive, broad-working-set OLTP workload.
//!
//! TPC-E differs from TPC-C in exactly the ways the paper leans on
//! (§4.3): reads dominate (roughly 10 reads per write at the I/O level),
//! customer/account selection is uniform rather than NURand-skewed, and
//! the dominant table (TRADE) is large and uniformly probed — so the
//! working set is broad, and the relationship between working-set size and
//! SSD capacity decides the speedup (peaking when they match, the paper's
//! 20K-customer case).
//!
//! One scaled customer stands in for 10 paper customers: 10K/20K/40K
//! customers (115/230/415 GB) become 1,000/2,000/4,000 scaled customers.
//! The metric is tpsE: Trade-Result transactions per second.

use std::collections::VecDeque;
use std::sync::Arc;

use turbopool_engine::{bulk_load_heap, bulk_load_index, Database, HeapId, IndexId};
use turbopool_iosim::rng::Rng;
use turbopool_iosim::rng::SmallRng;
use turbopool_iosim::{Clk, Time, MILLISECOND};

use crate::driver::{Client, StepResult, ThroughputRecorder};
use crate::rand_util::client_rng;
use crate::scenario::{build_db, Design, SystemSpec, SCALE};

/// Accounts per customer.
pub const ACCTS_PER_CUST: u64 = 2;
/// Holdings per account (direct-RID table).
pub const HOLDINGS_PER_ACCT: u64 = 10;
/// Preloaded historical trades per account.
pub const TRADES_PER_ACCT: u64 = 550;
/// Securities (global).
pub const SECURITIES: u64 = 5_000;

const REC_CUSTOMER: usize = 192;
const REC_ACCOUNT: usize = 128;
const REC_SECURITY: usize = 128;
const REC_HOLDING: usize = 64;
const REC_TRADE: usize = 64;

/// Trade growth headroom over preload.
const GROWTH_NUM: u64 = 13;
const GROWTH_DEN: u64 = 10;

const CPU_HEAVY: Time = (2.4 * SCALE) as Time * MILLISECOND / 1000 * 1000;
const CPU_LIGHT: Time = SCALE as Time * MILLISECOND;

fn pages_for(rows: u64, rec: usize, page_size: usize) -> u64 {
    let slots = (page_size / (1 + rec)) as u64;
    rows.div_ceil(slots)
}

fn index_extent(keys: u64, page_size: usize) -> u64 {
    let cap = ((page_size - 16) / 16) as f64 * 0.7;
    ((keys as f64 / cap * 1.6) as u64).max(8) + 8
}

/// Trade key: account in the high bits, per-account sequence below — one
/// index serves point lookups and "recent trades of account" ranges.
pub fn trade_key(account: u64, seq: u64) -> u64 {
    (account << 24) | seq
}

/// Table handles for one TPC-E database.
pub struct Tpce {
    pub db: Arc<Database>,
    pub customers: u64,
    h_customer: HeapId,
    h_account: HeapId,
    h_security: HeapId,
    h_holding: HeapId,
    h_trade: HeapId,
    i_trade: IndexId,
    seed: u64,
}

impl Tpce {
    pub fn accounts(&self) -> u64 {
        self.customers * ACCTS_PER_CUST
    }

    /// Pages needed for `customers` scaled customers.
    pub fn db_pages(customers: u64, page_size: usize) -> u64 {
        let accts = customers * ACCTS_PER_CUST;
        let trades = accts * TRADES_PER_ACCT * GROWTH_NUM / GROWTH_DEN;
        pages_for(customers, REC_CUSTOMER, page_size)
            + pages_for(accts, REC_ACCOUNT, page_size)
            + pages_for(SECURITIES, REC_SECURITY, page_size)
            + pages_for(accts * HOLDINGS_PER_ACCT, REC_HOLDING, page_size)
            + pages_for(trades, REC_TRADE, page_size)
            + index_extent(trades, page_size)
            + 1
            + 64
    }

    /// Build and bulk-load a TPC-E database of `customers` scaled
    /// customers.
    pub fn setup(design: Design, customers: u64, lambda: f64) -> Tpce {
        Self::setup_tweak(design, customers, lambda, |_| {})
    }

    /// Like [`Tpce::setup`] with a hook that edits the [`SystemSpec`]
    /// before the database opens (replacement/admission policy overrides
    /// for the policy-arena bench).
    pub fn setup_tweak(
        design: Design,
        customers: u64,
        lambda: f64,
        tweak: impl FnOnce(&mut SystemSpec),
    ) -> Tpce {
        let page_size = crate::scenario::PAGE_SIZE;
        let mut spec = SystemSpec::paper(design, Self::db_pages(customers, page_size));
        spec.lambda = lambda;
        tweak(&mut spec);
        let db = build_db(&spec);
        let mut clk = Clk::new();
        let accts = customers * ACCTS_PER_CUST;
        let trades_cap = accts * TRADES_PER_ACCT * GROWTH_NUM / GROWTH_DEN;

        let h_customer = db.create_heap(
            &mut clk,
            "customer",
            REC_CUSTOMER,
            pages_for(customers, REC_CUSTOMER, page_size),
        );
        let h_account = db.create_heap(
            &mut clk,
            "account",
            REC_ACCOUNT,
            pages_for(accts, REC_ACCOUNT, page_size),
        );
        let h_security = db.create_heap(
            &mut clk,
            "security",
            REC_SECURITY,
            pages_for(SECURITIES, REC_SECURITY, page_size),
        );
        let h_holding = db.create_heap(
            &mut clk,
            "holding",
            REC_HOLDING,
            pages_for(accts * HOLDINGS_PER_ACCT, REC_HOLDING, page_size),
        );
        let h_trade = db.create_heap(
            &mut clk,
            "trade",
            REC_TRADE,
            pages_for(trades_cap, REC_TRADE, page_size),
        );
        let i_trade = db.create_index(&mut clk, "trade_pk", index_extent(trades_cap, page_size));

        let u64rec = |len: usize, vals: &[(usize, u64)]| {
            let mut r = vec![0u8; len];
            for &(off, v) in vals {
                r[off..off + 8].copy_from_slice(&v.to_le_bytes());
            }
            r
        };
        bulk_load_heap(
            &db,
            h_customer,
            (0..customers).map(|_| u64rec(REC_CUSTOMER, &[])),
        );
        bulk_load_heap(
            &db,
            h_account,
            // [8..16] = next trade sequence number for the account.
            (0..accts).map(|_| u64rec(REC_ACCOUNT, &[(0, 10_000), (8, TRADES_PER_ACCT)])),
        );
        bulk_load_heap(
            &db,
            h_security,
            (0..SECURITIES).map(|i| u64rec(REC_SECURITY, &[(0, 10 + i % 490)])),
        );
        bulk_load_heap(
            &db,
            h_holding,
            (0..accts * HOLDINGS_PER_ACCT).map(|_| u64rec(REC_HOLDING, &[(0, 100)])),
        );
        // Historical trades, loaded in trade-id order; trade ids interleave
        // accounts, so one account's trades scatter over many heap pages —
        // lookups by trade key are random I/O.
        let total_trades = accts * TRADES_PER_ACCT;
        let trade_rec = |sec: u64| u64rec(REC_TRADE, &[(0, 1 /* settled */), (8, sec), (16, 10)]);
        bulk_load_heap(
            &db,
            h_trade,
            (0..total_trades).map(|i| trade_rec(i % SECURITIES)),
        );
        // rid i holds the trade of account (i % accts), seq (i / accts).
        let mut pairs: Vec<(u64, u64)> = (0..total_trades)
            .map(|i| (trade_key(i % accts, i / accts), i))
            .collect();
        pairs.sort_unstable();
        bulk_load_index(&db, i_trade, pairs, 0.7);

        Tpce {
            db,
            customers,
            h_customer,
            h_account,
            h_security,
            h_holding,
            h_trade,
            i_trade,
            seed: spec.seed,
        }
    }

    /// A terminal; Trade-Result commits are recorded into `tpse`.
    pub fn client(self: &Arc<Self>, client_no: u64, tpse: Arc<ThroughputRecorder>) -> TpceClient {
        TpceClient {
            t: Arc::clone(self),
            rng: client_rng(self.seed, client_no),
            tpse,
            pending: VecDeque::new(),
        }
    }
}

/// One TPC-E terminal.
pub struct TpceClient {
    t: Arc<Tpce>,
    rng: SmallRng,
    tpse: Arc<ThroughputRecorder>,
    /// Trades ordered by this client and not yet resulted: (key, rid).
    pending: VecDeque<(u64, u64)>,
}

impl TpceClient {
    fn trade_order(&mut self, clk: &mut Clk) {
        let t = Arc::clone(&self.t);
        let acct = self.rng.gen_range(0..t.accounts());
        let sec = self.rng.gen_range(0..SECURITIES);
        clk.elapse(CPU_HEAVY);
        let mut txn = t.db.begin(clk);
        let cust = acct / ACCTS_PER_CUST;
        txn.heap_get(t.h_customer, cust);
        txn.heap_get(t.h_security, sec);
        // Take the account's next trade sequence.
        let mut arec = txn.heap_get(t.h_account, acct).expect("account");
        let seq = u64::from_le_bytes(arec[8..16].try_into().unwrap());
        arec[8..16].copy_from_slice(&(seq + 1).to_le_bytes());
        txn.heap_update(t.h_account, acct, &arec);
        let mut trec = vec![0u8; REC_TRADE];
        trec[8..16].copy_from_slice(&sec.to_le_bytes());
        trec[16..24].copy_from_slice(&10u64.to_le_bytes());
        let rid = txn.heap_insert(t.h_trade, &trec).expect("trade heap full");
        let key = trade_key(acct, seq);
        txn.index_insert(t.i_trade, key, rid);
        txn.commit();
        self.pending.push_back((key, rid));
    }

    fn trade_result(&mut self, clk: &mut Clk) {
        let Some((key, rid)) = self.pending.pop_front() else {
            // Nothing in flight: order first (keeps the 1:1 pairing).
            self.trade_order(clk);
            return;
        };
        let t = Arc::clone(&self.t);
        let acct = key >> 24;
        clk.elapse(CPU_HEAVY);
        let mut txn = t.db.begin(clk);
        let mut trec = txn.heap_get(t.h_trade, rid).expect("trade");
        trec[0..8].copy_from_slice(&1u64.to_le_bytes()); // settled
        txn.heap_update(t.h_trade, rid, &trec);
        // Update one holding and the account balance.
        let h = acct * HOLDINGS_PER_ACCT + self.rng.gen_range(0..HOLDINGS_PER_ACCT);
        if let Some(mut hrec) = txn.heap_get(t.h_holding, h) {
            let q = u64::from_le_bytes(hrec[0..8].try_into().unwrap());
            hrec[0..8].copy_from_slice(&(q + 1).to_le_bytes());
            txn.heap_update(t.h_holding, h, &hrec);
        }
        let mut arec = txn.heap_get(t.h_account, acct).expect("account");
        let bal = u64::from_le_bytes(arec[0..8].try_into().unwrap());
        arec[0..8].copy_from_slice(&bal.wrapping_add(7).to_le_bytes());
        txn.heap_update(t.h_account, acct, &arec);
        txn.commit();
        self.tpse.record(clk.now);
    }

    /// Draw a trade age: strongly biased toward *recent* trades (a cubic
    /// power law — about half of all lookups land in the newest ~12% of
    /// each account's history). This recency is what makes the workload's
    /// hot set scale with the customer count: it fits DRAM at 10K, matches
    /// the SSD at 20K, and overflows both at 40K — the §4.3 crossover.
    fn recent_offset(&mut self) -> u64 {
        let u: f64 = self.rng.gen();
        ((u * u * u) * TRADES_PER_ACCT as f64) as u64
    }

    fn trade_lookup(&mut self, clk: &mut Clk) {
        let t = Arc::clone(&self.t);
        clk.elapse(CPU_LIGHT);
        let mut txn = t.db.begin(clk);
        // Ten historical trades, recency-skewed, across all accounts.
        for _ in 0..10 {
            let acct = self.rng.gen_range(0..t.accounts());
            let seq = TRADES_PER_ACCT - 1 - self.recent_offset().min(TRADES_PER_ACCT - 1);
            if let Some(rid) = txn.index_get(t.i_trade, trade_key(acct, seq)) {
                txn.heap_get(t.h_trade, rid);
            }
        }
        txn.commit();
    }

    fn customer_position(&mut self, clk: &mut Clk) {
        let t = Arc::clone(&self.t);
        let cust = self.rng.gen_range(0..t.customers);
        clk.elapse(CPU_HEAVY);
        let mut txn = t.db.begin(clk);
        txn.heap_get(t.h_customer, cust);
        for a in 0..ACCTS_PER_CUST {
            let acct = cust * ACCTS_PER_CUST + a;
            txn.heap_get(t.h_account, acct);
            for h in 0..HOLDINGS_PER_ACCT {
                txn.heap_get(t.h_holding, acct * HOLDINGS_PER_ACCT + h);
            }
        }
        txn.commit();
    }

    fn market_watch(&mut self, clk: &mut Clk) {
        let t = Arc::clone(&self.t);
        clk.elapse(CPU_LIGHT);
        let mut txn = t.db.begin(clk);
        for _ in 0..20 {
            let sec = self.rng.gen_range(0..SECURITIES);
            txn.heap_get(t.h_security, sec);
        }
        txn.commit();
    }

    fn trade_status(&mut self, clk: &mut Clk) {
        let t = Arc::clone(&self.t);
        let acct = self.rng.gen_range(0..t.accounts());
        clk.elapse(CPU_LIGHT);
        let mut txn = t.db.begin(clk);
        // Ten trades near the top of the account's history (an index range
        // over the most recent sequence numbers + heap reads).
        let newest = TRADES_PER_ACCT - 1 - self.recent_offset().min(TRADES_PER_ACCT - 11);
        let lo = trade_key(acct, newest.saturating_sub(9));
        let hi = trade_key(acct, newest);
        let recent = txn.index_range(t.i_trade, lo, hi, 16);
        for (_, rid) in recent {
            txn.heap_get(t.h_trade, rid);
        }
        txn.commit();
    }
}

impl Client for TpceClient {
    fn step(&mut self, clk: &mut Clk) -> StepResult {
        let roll = self.rng.gen_range(0..100u32);
        match roll {
            0..=9 => self.trade_order(clk),
            10..=19 => self.trade_result(clk),
            20..=34 => self.trade_lookup(clk),
            35..=59 => self.customer_position(clk),
            60..=79 => self.market_watch(clk),
            _ => self.trade_status(clk),
        }
        StepResult::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Driver;
    use turbopool_iosim::MINUTE;

    #[test]
    fn sizing_matches_paper_targets() {
        // 2,000 scaled customers ≈ the 20K-customer, 230 GB database.
        let pages = Tpce::db_pages(2_000, crate::scenario::PAGE_SIZE);
        let target = crate::scenario::gb_to_pages(230.0);
        let ratio = pages as f64 / target as f64;
        assert!(
            (0.75..1.25).contains(&ratio),
            "pages {pages} target {target}"
        );
    }

    #[test]
    fn trade_key_orders_by_account_then_seq() {
        assert!(trade_key(1, 0) > trade_key(0, 999));
        assert!(trade_key(2, 5) > trade_key(2, 4));
    }

    #[test]
    fn short_run_results_trades() {
        let t = Arc::new(Tpce::setup(Design::Dw, 50, 0.01));
        let tpse = ThroughputRecorder::new(MINUTE);
        let mut d = Driver::new();
        for c in 0..4 {
            d.add(0, Box::new(t.client(c, Arc::clone(&tpse))));
        }
        d.run_until(30 * MINUTE);
        assert!(tpse.total() > 3, "only {} TradeResults", tpse.total());
        // Read-dominance: device reads far outnumber writes.
        let disk = t.db.io().disk_stats();
        assert!(disk.read_pages > disk.write_pages, "{disk:?}");
    }
}
