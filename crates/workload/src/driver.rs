//! The discrete-event driver: deterministic multiplexing of logical
//! clients over virtual time.
//!
//! Each client owns a virtual clock; the driver always runs the client
//! with the smallest clock, so device queueing and cross-client
//! interference play out exactly as they would with truly concurrent
//! streams — deterministically. One `step` is one atomic unit of work
//! (one transaction, one query, one cleaner batch, one checkpoint).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use turbopool_core::cleaner::{CleanerStep, LazyCleaner};
use turbopool_engine::Database;
use turbopool_iosim::sync::Mutex;
use turbopool_iosim::{clock, Clk, Time};

/// Outcome of one client step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// Reschedule the client at its new clock.
    Continue,
    /// The client is finished; remove it.
    Done,
}

/// A logical client of the simulation.
pub trait Client: Send {
    /// Run one unit of work, advancing `clk` through any synchronous waits.
    fn step(&mut self, clk: &mut Clk) -> StepResult;
}

struct Slot {
    clk: Clk,
    client: Box<dyn Client>,
}

/// Earliest-clock-first scheduler.
#[derive(Default)]
pub struct Driver {
    slots: Vec<Slot>,
    queue: BinaryHeap<Reverse<(Time, usize)>>,
}

impl Driver {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a client whose clock starts at `start`.
    pub fn add(&mut self, start: Time, client: Box<dyn Client>) -> usize {
        let id = self.slots.len();
        self.slots.push(Slot {
            clk: Clk::at(start),
            client,
        });
        self.queue.push(Reverse((start, id)));
        id
    }

    /// Run until every runnable client's clock reaches `end` (or every
    /// client is done). Steps that begin before `end` run to completion
    /// and may overshoot it, like real in-flight work at a deadline.
    pub fn run_until(&mut self, end: Time) {
        while let Some(&Reverse((t, id))) = self.queue.peek() {
            if t >= end {
                break;
            }
            self.queue.pop();
            let slot = &mut self.slots[id];
            debug_assert_eq!(slot.clk.now, t);
            match slot.client.step(&mut slot.clk) {
                StepResult::Continue => {
                    // Guarantee progress even for zero-cost steps.
                    if slot.clk.now <= t {
                        slot.clk.now = t + 1;
                    }
                    self.queue.push(Reverse((slot.clk.now, id)));
                }
                StepResult::Done => {}
            }
        }
    }

    /// Run until no runnable clients remain.
    pub fn run_to_completion(&mut self) {
        self.run_until(Time::MAX);
    }

    /// Number of clients still scheduled.
    pub fn runnable(&self) -> usize {
        self.queue.len()
    }
}

/// Time-bucketed event counter: the tpmC / tpsE series of Figures 6, 7
/// and 9.
pub struct ThroughputRecorder {
    bucket_ns: Time,
    counts: Mutex<Vec<u64>>,
    total: AtomicU64,
}

impl ThroughputRecorder {
    /// The paper plots six-minute buckets.
    pub fn new(bucket_ns: Time) -> Arc<Self> {
        assert!(bucket_ns > 0);
        Arc::new(ThroughputRecorder {
            bucket_ns,
            counts: Mutex::new(Vec::new()),
            total: AtomicU64::new(0),
        })
    }

    /// Record one completed unit (e.g. one NewOrder commit) at `now`.
    pub fn record(&self, now: Time) {
        let idx = (now / self.bucket_ns) as usize;
        let mut c = self.counts.lock();
        if c.len() <= idx {
            c.resize(idx + 1, 0);
        }
        c[idx] += 1;
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Events with `t0 <= time < t1`, pro-rating partial buckets.
    pub fn count_between(&self, t0: Time, t1: Time) -> f64 {
        let c = self.counts.lock();
        let mut sum = 0.0;
        for (i, &n) in c.iter().enumerate() {
            let b0 = i as Time * self.bucket_ns;
            let b1 = b0 + self.bucket_ns;
            let lo = b0.max(t0);
            let hi = b1.min(t1);
            if hi > lo {
                sum += n as f64 * (hi - lo) as f64 / self.bucket_ns as f64;
            }
        }
        sum
    }

    /// Average event rate per `per` nanoseconds over `[t0, t1)` — e.g.
    /// `per = MINUTE` yields tpmC.
    pub fn rate_between(&self, t0: Time, t1: Time, per: Time) -> f64 {
        if t1 <= t0 {
            return 0.0;
        }
        self.count_between(t0, t1) * per as f64 / (t1 - t0) as f64
    }

    /// The series as `(bucket_start_hours, events_per_minute)` pairs.
    pub fn series_per_minute(&self) -> Vec<(f64, f64)> {
        let c = self.counts.lock();
        c.iter()
            .enumerate()
            .map(|(i, &n)| {
                let start = i as Time * self.bucket_ns;
                let per_min = n as f64 * clock::MINUTE as f64 / self.bucket_ns as f64;
                (clock::as_hours(start), per_min)
            })
            .collect()
    }
}

/// Pseudo-client that takes a sharp checkpoint every `interval`.
pub struct CheckpointClient {
    db: Arc<Database>,
    interval: Time,
    next: Time,
}

impl CheckpointClient {
    pub fn new(db: Arc<Database>, interval: Time) -> Self {
        assert!(interval > 0);
        CheckpointClient {
            db,
            interval,
            next: interval,
        }
    }
}

impl Client for CheckpointClient {
    fn step(&mut self, clk: &mut Clk) -> StepResult {
        clk.wait_until(self.next);
        self.db.checkpoint(clk);
        self.next = clk.now + self.interval;
        StepResult::Continue
    }
}

/// Pseudo-client wrapping the LC lazy-cleaning thread.
pub struct CleanerClient {
    cleaner: LazyCleaner,
}

impl CleanerClient {
    pub fn new(cleaner: LazyCleaner) -> Self {
        CleanerClient { cleaner }
    }

    /// Convenience: attach a cleaner to `db` if it runs the LC design.
    pub fn for_db(db: &Database) -> Option<Self> {
        let mgr = db.ssd_manager()?;
        if mgr.config().design == turbopool_core::SsdDesign::LazyCleaning {
            Some(CleanerClient::new(LazyCleaner::new(Arc::clone(mgr))))
        } else {
            None
        }
    }
}

impl Client for CleanerClient {
    fn step(&mut self, clk: &mut Clk) -> StepResult {
        match self.cleaner.step(clk) {
            CleanerStep::Idle => {
                clk.elapse(self.cleaner.poll_interval());
                StepResult::Continue
            }
            CleanerStep::Cleaned(_) => StepResult::Continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbopool_iosim::{MILLISECOND, MINUTE, SECOND};

    struct Ticker {
        period: Time,
        fired: Arc<ThroughputRecorder>,
        remaining: usize,
    }

    impl Client for Ticker {
        fn step(&mut self, clk: &mut Clk) -> StepResult {
            if self.remaining == 0 {
                return StepResult::Done;
            }
            clk.elapse(self.period);
            self.fired.record(clk.now);
            self.remaining -= 1;
            StepResult::Continue
        }
    }

    #[test]
    fn earliest_clock_first_interleaves_fairly() {
        let rec = ThroughputRecorder::new(SECOND);
        let mut d = Driver::new();
        d.add(
            0,
            Box::new(Ticker {
                period: 10 * MILLISECOND,
                fired: Arc::clone(&rec),
                remaining: 100,
            }),
        );
        d.add(
            0,
            Box::new(Ticker {
                period: 30 * MILLISECOND,
                fired: Arc::clone(&rec),
                remaining: 100,
            }),
        );
        d.run_until(600 * MILLISECOND);
        // Fast ticker: ~60 events; slow: ~20. Both progressed to ~600ms.
        let total = rec.total();
        assert!((75..=85).contains(&(total as i64)), "total {total}");
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let rec = ThroughputRecorder::new(SECOND);
        let mut d = Driver::new();
        d.add(
            0,
            Box::new(Ticker {
                period: SECOND,
                fired: Arc::clone(&rec),
                remaining: 1_000_000,
            }),
        );
        d.run_until(10 * SECOND);
        assert_eq!(rec.total(), 10);
        assert_eq!(d.runnable(), 1, "client still scheduled for later");
        d.run_until(20 * SECOND);
        assert_eq!(rec.total(), 20);
    }

    #[test]
    fn done_clients_are_removed() {
        let rec = ThroughputRecorder::new(SECOND);
        let mut d = Driver::new();
        d.add(
            0,
            Box::new(Ticker {
                period: SECOND,
                fired: rec,
                remaining: 3,
            }),
        );
        d.run_to_completion();
        assert_eq!(d.runnable(), 0);
    }

    #[test]
    fn zero_cost_steps_still_make_progress() {
        struct Lazy(usize);
        impl Client for Lazy {
            fn step(&mut self, _clk: &mut Clk) -> StepResult {
                self.0 -= 1;
                if self.0 == 0 {
                    StepResult::Done
                } else {
                    StepResult::Continue
                }
            }
        }
        let mut d = Driver::new();
        d.add(0, Box::new(Lazy(1000)));
        d.run_until(SECOND); // must terminate
        assert_eq!(d.runnable(), 0);
    }

    #[test]
    fn recorder_rates_and_series() {
        let rec = ThroughputRecorder::new(MINUTE);
        for i in 0..60 {
            rec.record(i * SECOND); // 60 events in minute 0
        }
        for i in 0..30 {
            rec.record(MINUTE + i * 2 * SECOND); // 30 events in minute 1
        }
        assert_eq!(rec.total(), 90);
        assert!((rec.count_between(0, MINUTE) - 60.0).abs() < 1e-9);
        assert!((rec.rate_between(0, 2 * MINUTE, MINUTE) - 45.0).abs() < 1e-9);
        let series = rec.series_per_minute();
        assert_eq!(series.len(), 2);
        assert!((series[0].1 - 60.0).abs() < 1e-9);
        assert!((series[1].1 - 30.0).abs() < 1e-9);
    }
}
