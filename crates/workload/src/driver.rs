//! The discrete-event driver: deterministic multiplexing of logical
//! clients over virtual time.
//!
//! Each client owns a virtual clock; the driver always runs the client
//! with the smallest clock, so device queueing and cross-client
//! interference play out exactly as they would with truly concurrent
//! streams — deterministically. One `step` is one atomic unit of work
//! (one transaction, one query, one cleaner batch, one checkpoint).
//!
//! # Parallel execution (DESIGN.md §9)
//!
//! [`Driver::run_until_parallel`] is a conservative time-windowed
//! parallel variant. Clients are partitioned into **domains** (see
//! [`Driver::add_in_domain`]); each window `[t_min, t_min + lookahead)`
//! pops every client scheduled inside it, groups them by domain, and
//! steps each domain group on the scoped worker pool
//! ([`crate::pool`]). Within a group, steps execute in exactly the
//! sequential earliest-clock-first `(time, client_id)` order, and the
//! surviving clients' re-arrivals are merged back into the global queue
//! under the deterministic `(virtual_time, client_id, seq)` sort key —
//! so per-domain state evolves bit-identically to a sequential run.
//!
//! The determinism contract: domains must be **share-nothing** — a
//! domain's clients may only mutate state (Database, devices, pools)
//! owned by that domain. State shared *across* domains must be
//! commutative (atomic counters, [`ThroughputRecorder`] buckets), so
//! that cross-domain interleaving cannot change any observable result.
//! The sequential driver trivially satisfies the same contract, which
//! is what makes `run_until_parallel` bit-identical to `run_until`.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use turbopool_core::cleaner::{CleanerStep, LazyCleaner};
use turbopool_engine::Database;
use turbopool_iosim::sync::Mutex;
use turbopool_iosim::{clock, Clk, Time};

/// Outcome of one client step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// Reschedule the client at its new clock.
    Continue,
    /// The client is finished; remove it.
    Done,
}

/// A logical client of the simulation.
pub trait Client: Send {
    /// Run one unit of work, advancing `clk` through any synchronous waits.
    fn step(&mut self, clk: &mut Clk) -> StepResult;
}

pub(crate) struct Slot {
    pub(crate) clk: Clk,
    pub(crate) client: Box<dyn Client>,
    /// Share-nothing partition this client belongs to (see module docs).
    pub(crate) domain: usize,
}

/// A client re-entering the global queue after a parallel window, keyed
/// for the deterministic merge: `(virtual_time, client_id, seq)`.
pub(crate) struct Arrival {
    pub(crate) time: Time,
    pub(crate) id: usize,
    /// Per-domain emission order within the window — a deterministic
    /// tie-breaker derived purely from the domain's own execution.
    pub(crate) seq: u64,
    pub(crate) slot: Slot,
}

/// Result of running one domain group through a window.
pub(crate) struct WindowOutcome {
    pub(crate) arrivals: Vec<Arrival>,
    pub(crate) steps: u64,
}

/// Step one domain's clients through `[.., window_end)` in exact
/// earliest-clock-first order — the same order the sequential driver
/// would use restricted to this domain. Pure function of its inputs:
/// runs identically on any worker thread.
pub(crate) fn run_group(entries: Vec<(Time, usize, Slot)>, window_end: Time) -> WindowOutcome {
    let mut heap: BinaryHeap<Reverse<(Time, usize)>> = BinaryHeap::new();
    let mut slots: BTreeMap<usize, Slot> = BTreeMap::new();
    for (t, id, slot) in entries {
        heap.push(Reverse((t, id)));
        slots.insert(id, slot);
    }
    let mut steps = 0u64;
    while let Some(&Reverse((t, id))) = heap.peek() {
        if t >= window_end {
            break;
        }
        heap.pop();
        let slot = slots.get_mut(&id).expect("scheduled client has a slot");
        debug_assert_eq!(slot.clk.now, t);
        steps += 1;
        match slot.client.step(&mut slot.clk) {
            StepResult::Continue => {
                // Guarantee progress even for zero-cost steps.
                if slot.clk.now <= t {
                    slot.clk.now = t + 1;
                }
                heap.push(Reverse((slot.clk.now, id)));
            }
            StepResult::Done => {
                slots.remove(&id);
            }
        }
    }
    // Everything still scheduled leaves the window as an arrival, in
    // deterministic (time, id) order.
    let mut rest: Vec<(Time, usize)> = heap.into_iter().map(|Reverse(p)| p).collect();
    rest.sort_unstable();
    let arrivals = rest
        .into_iter()
        .enumerate()
        .map(|(seq, (time, id))| Arrival {
            time,
            id,
            seq: seq as u64,
            slot: slots.remove(&id).expect("scheduled client has a slot"),
        })
        .collect();
    WindowOutcome { arrivals, steps }
}

/// Earliest-clock-first scheduler.
pub struct Driver {
    slots: Vec<Option<Slot>>,
    queue: BinaryHeap<Reverse<(Time, usize)>>,
    steps: u64,
    /// Parallel window width. `Time::MAX` (the default) means "one
    /// window": valid whenever domains are share-nothing, which the
    /// contract already requires. Benches narrow it via
    /// [`Driver::set_lookahead`] to bound how far domains drift apart.
    lookahead: Time,
}

impl Default for Driver {
    fn default() -> Self {
        Driver {
            slots: Vec::new(),
            queue: BinaryHeap::new(),
            steps: 0,
            lookahead: Time::MAX,
        }
    }
}

impl Driver {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a client whose clock starts at `start`, in domain 0.
    pub fn add(&mut self, start: Time, client: Box<dyn Client>) -> usize {
        self.add_in_domain(0, start, client)
    }

    /// Register a client in a share-nothing `domain`. Clients in the
    /// same domain are always stepped in sequential order relative to
    /// each other; clients in different domains may be stepped on
    /// different worker threads by [`Driver::run_until_parallel`].
    pub fn add_in_domain(&mut self, domain: usize, start: Time, client: Box<dyn Client>) -> usize {
        let id = self.slots.len();
        self.slots.push(Some(Slot {
            clk: Clk::at(start),
            client,
            domain,
        }));
        self.queue.push(Reverse((start, id)));
        id
    }

    /// Narrow the parallel window to `ns` of virtual time (clamped to at
    /// least 1 ns). A natural conservative choice is the minimum device
    /// service time (`DeviceSetup::min_service_ns`) times a batching
    /// factor; smaller windows synchronize domains more often.
    pub fn set_lookahead(&mut self, ns: Time) {
        self.lookahead = ns.max(1);
    }

    /// Run until every runnable client's clock reaches `end` (or every
    /// client is done). Steps that begin before `end` run to completion
    /// and may overshoot it, like real in-flight work at a deadline.
    pub fn run_until(&mut self, end: Time) {
        while let Some(&Reverse((t, id))) = self.queue.peek() {
            if t >= end {
                break;
            }
            self.queue.pop();
            let slot = self.slots[id]
                .as_mut()
                .expect("scheduled client has a slot");
            debug_assert_eq!(slot.clk.now, t);
            self.steps += 1;
            match slot.client.step(&mut slot.clk) {
                StepResult::Continue => {
                    // Guarantee progress even for zero-cost steps.
                    if slot.clk.now <= t {
                        slot.clk.now = t + 1;
                    }
                    self.queue.push(Reverse((slot.clk.now, id)));
                }
                StepResult::Done => {
                    self.slots[id] = None;
                }
            }
        }
    }

    /// Time-windowed parallel variant of [`Driver::run_until`],
    /// bit-identical to it under the share-nothing domain contract (see
    /// module docs). Each iteration takes the window
    /// `[t_min, t_min + lookahead)`, steps each domain's ready clients
    /// as an independent group (on up to `threads` OS threads), then
    /// merges the survivors back under the `(time, client_id, seq)` key.
    pub fn run_until_parallel(&mut self, end: Time, threads: usize) {
        let threads = threads.max(1);
        loop {
            let t_min = match self.queue.peek() {
                Some(&Reverse((t, _))) => t,
                None => break,
            };
            if t_min >= end {
                break;
            }
            let window_end = end.min(t_min.saturating_add(self.lookahead));
            // Pop every client scheduled inside the window, grouped by
            // domain. Heap pops come out in (time, id) order, so each
            // group's entry list is already sorted.
            let mut groups: BTreeMap<usize, Vec<(Time, usize, Slot)>> = BTreeMap::new();
            while let Some(&Reverse((t, id))) = self.queue.peek() {
                if t >= window_end {
                    break;
                }
                self.queue.pop();
                let slot = self.slots[id].take().expect("scheduled client has a slot");
                groups.entry(slot.domain).or_default().push((t, id, slot));
            }
            let groups: Vec<Vec<(Time, usize, Slot)>> = groups.into_values().collect();
            let outcomes = if threads == 1 || groups.len() == 1 {
                groups
                    .into_iter()
                    .map(|g| run_group(g, window_end))
                    .collect()
            } else {
                crate::pool::run_groups(groups, window_end, threads)
            };
            let mut arrivals: Vec<Arrival> = Vec::new();
            for outcome in outcomes {
                self.steps += outcome.steps;
                arrivals.extend(outcome.arrivals);
            }
            // Deterministic merge: independent of which thread finished
            // first, the global queue is rebuilt in the same order.
            arrivals.sort_by_key(|a| (a.time, a.id, a.seq));
            for a in arrivals {
                self.slots[a.id] = Some(a.slot);
                self.queue.push(Reverse((a.time, a.id)));
            }
        }
    }

    /// Run until no runnable clients remain.
    pub fn run_to_completion(&mut self) {
        self.run_until(Time::MAX);
    }

    /// Parallel [`Driver::run_to_completion`].
    pub fn run_parallel(&mut self, threads: usize) {
        self.run_until_parallel(Time::MAX, threads);
    }

    /// Number of clients still scheduled.
    pub fn runnable(&self) -> usize {
        self.queue.len()
    }

    /// Total client steps executed so far (sequential + parallel).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The scheduled clients' `(client_id, virtual_clock)` pairs, sorted
    /// by id — the determinism tests compare these across thread counts.
    pub fn clocks(&self) -> Vec<(usize, Time)> {
        let mut v: Vec<(usize, Time)> =
            self.queue.iter().map(|&Reverse((t, id))| (id, t)).collect();
        v.sort_unstable();
        v
    }
}

/// Time-bucketed event counter: the tpmC / tpsE series of Figures 6, 7
/// and 9.
pub struct ThroughputRecorder {
    bucket_ns: Time,
    counts: Mutex<Vec<u64>>,
    total: AtomicU64,
}

impl ThroughputRecorder {
    /// The paper plots six-minute buckets.
    pub fn new(bucket_ns: Time) -> Arc<Self> {
        assert!(bucket_ns > 0);
        Arc::new(ThroughputRecorder {
            bucket_ns,
            counts: Mutex::new(Vec::new()),
            total: AtomicU64::new(0),
        })
    }

    /// Record one completed unit (e.g. one NewOrder commit) at `now`.
    pub fn record(&self, now: Time) {
        let idx = (now / self.bucket_ns) as usize;
        let mut c = self.counts.lock();
        if c.len() <= idx {
            c.resize(idx + 1, 0);
        }
        c[idx] += 1;
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Events with `t0 <= time < t1`, pro-rating partial buckets.
    pub fn count_between(&self, t0: Time, t1: Time) -> f64 {
        let c = self.counts.lock();
        let mut sum = 0.0;
        for (i, &n) in c.iter().enumerate() {
            let b0 = i as Time * self.bucket_ns;
            let b1 = b0 + self.bucket_ns;
            let lo = b0.max(t0);
            let hi = b1.min(t1);
            if hi > lo {
                sum += n as f64 * (hi - lo) as f64 / self.bucket_ns as f64;
            }
        }
        sum
    }

    /// Average event rate per `per` nanoseconds over `[t0, t1)` — e.g.
    /// `per = MINUTE` yields tpmC.
    pub fn rate_between(&self, t0: Time, t1: Time, per: Time) -> f64 {
        if t1 <= t0 {
            return 0.0;
        }
        self.count_between(t0, t1) * per as f64 / (t1 - t0) as f64
    }

    /// The series as `(bucket_start_hours, events_per_minute)` pairs.
    pub fn series_per_minute(&self) -> Vec<(f64, f64)> {
        let c = self.counts.lock();
        c.iter()
            .enumerate()
            .map(|(i, &n)| {
                let start = i as Time * self.bucket_ns;
                let per_min = n as f64 * clock::MINUTE as f64 / self.bucket_ns as f64;
                (clock::as_hours(start), per_min)
            })
            .collect()
    }
}

/// Pseudo-client that takes a sharp checkpoint every `interval`.
pub struct CheckpointClient {
    db: Arc<Database>,
    interval: Time,
    next: Time,
}

impl CheckpointClient {
    pub fn new(db: Arc<Database>, interval: Time) -> Self {
        assert!(interval > 0);
        CheckpointClient {
            db,
            interval,
            next: interval,
        }
    }
}

impl Client for CheckpointClient {
    fn step(&mut self, clk: &mut Clk) -> StepResult {
        clk.wait_until(self.next);
        self.db.checkpoint(clk);
        self.next = clk.now + self.interval;
        StepResult::Continue
    }
}

/// Pseudo-client wrapping the LC lazy-cleaning thread.
pub struct CleanerClient {
    cleaner: LazyCleaner,
}

impl CleanerClient {
    pub fn new(cleaner: LazyCleaner) -> Self {
        CleanerClient { cleaner }
    }

    /// Convenience: attach a cleaner to `db` if it runs the LC design.
    pub fn for_db(db: &Database) -> Option<Self> {
        let mgr = db.ssd_manager()?;
        if mgr.config().design == turbopool_core::SsdDesign::LazyCleaning {
            Some(CleanerClient::new(LazyCleaner::new(Arc::clone(mgr))))
        } else {
            None
        }
    }
}

impl Client for CleanerClient {
    fn step(&mut self, clk: &mut Clk) -> StepResult {
        match self.cleaner.step(clk) {
            CleanerStep::Idle | CleanerStep::Backoff => {
                // A yielded (congested) round sleeps like an idle one:
                // re-polling sooner would only re-measure the same queue.
                clk.elapse(self.cleaner.poll_interval());
                StepResult::Continue
            }
            CleanerStep::Cleaned(_) => StepResult::Continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbopool_iosim::{MILLISECOND, MINUTE, SECOND};

    struct Ticker {
        period: Time,
        fired: Arc<ThroughputRecorder>,
        remaining: usize,
    }

    impl Client for Ticker {
        fn step(&mut self, clk: &mut Clk) -> StepResult {
            if self.remaining == 0 {
                return StepResult::Done;
            }
            clk.elapse(self.period);
            self.fired.record(clk.now);
            self.remaining -= 1;
            StepResult::Continue
        }
    }

    #[test]
    fn earliest_clock_first_interleaves_fairly() {
        let rec = ThroughputRecorder::new(SECOND);
        let mut d = Driver::new();
        d.add(
            0,
            Box::new(Ticker {
                period: 10 * MILLISECOND,
                fired: Arc::clone(&rec),
                remaining: 100,
            }),
        );
        d.add(
            0,
            Box::new(Ticker {
                period: 30 * MILLISECOND,
                fired: Arc::clone(&rec),
                remaining: 100,
            }),
        );
        d.run_until(600 * MILLISECOND);
        // Fast ticker: ~60 events; slow: ~20. Both progressed to ~600ms.
        let total = rec.total();
        assert!((75..=85).contains(&(total as i64)), "total {total}");
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let rec = ThroughputRecorder::new(SECOND);
        let mut d = Driver::new();
        d.add(
            0,
            Box::new(Ticker {
                period: SECOND,
                fired: Arc::clone(&rec),
                remaining: 1_000_000,
            }),
        );
        d.run_until(10 * SECOND);
        assert_eq!(rec.total(), 10);
        assert_eq!(d.runnable(), 1, "client still scheduled for later");
        d.run_until(20 * SECOND);
        assert_eq!(rec.total(), 20);
    }

    #[test]
    fn done_clients_are_removed() {
        let rec = ThroughputRecorder::new(SECOND);
        let mut d = Driver::new();
        d.add(
            0,
            Box::new(Ticker {
                period: SECOND,
                fired: rec,
                remaining: 3,
            }),
        );
        d.run_to_completion();
        assert_eq!(d.runnable(), 0);
    }

    #[test]
    fn zero_cost_steps_still_make_progress() {
        struct Lazy(usize);
        impl Client for Lazy {
            fn step(&mut self, _clk: &mut Clk) -> StepResult {
                self.0 -= 1;
                if self.0 == 0 {
                    StepResult::Done
                } else {
                    StepResult::Continue
                }
            }
        }
        let mut d = Driver::new();
        d.add(0, Box::new(Lazy(1000)));
        d.run_until(SECOND); // must terminate
        assert_eq!(d.runnable(), 0);
    }

    fn ticker_fleet(d: &mut Driver, rec: &Arc<ThroughputRecorder>) {
        for domain in 0..4 {
            for c in 0..3 {
                d.add_in_domain(
                    domain,
                    c * MILLISECOND,
                    Box::new(Ticker {
                        period: (3 + domain as Time * 2 + c) * MILLISECOND,
                        fired: Arc::clone(rec),
                        remaining: 500,
                    }),
                );
            }
        }
    }

    #[test]
    fn parallel_run_matches_sequential_bit_for_bit() {
        let rec_seq = ThroughputRecorder::new(SECOND);
        let mut seq = Driver::new();
        ticker_fleet(&mut seq, &rec_seq);
        seq.run_until(SECOND);

        for threads in [1, 2, 4, 8] {
            let rec_par = ThroughputRecorder::new(SECOND);
            let mut par = Driver::new();
            ticker_fleet(&mut par, &rec_par);
            // Tiny lookahead: force many windows so the merge path is
            // exercised hard, not just once.
            par.set_lookahead(2 * MILLISECOND);
            par.run_until_parallel(SECOND, threads);
            assert_eq!(par.clocks(), seq.clocks(), "threads={threads}");
            assert_eq!(par.steps(), seq.steps(), "threads={threads}");
            assert_eq!(rec_par.total(), rec_seq.total(), "threads={threads}");
        }
    }

    #[test]
    fn parallel_run_with_default_lookahead_completes() {
        let rec = ThroughputRecorder::new(SECOND);
        let mut d = Driver::new();
        ticker_fleet(&mut d, &rec);
        d.run_parallel(4);
        assert_eq!(d.runnable(), 0);
        assert_eq!(rec.total(), 12 * 500);
    }

    #[test]
    fn single_domain_parallel_is_sequential() {
        let rec_seq = ThroughputRecorder::new(SECOND);
        let mut seq = Driver::new();
        for c in 0..5 {
            seq.add(
                0,
                Box::new(Ticker {
                    period: (c + 1) * MILLISECOND,
                    fired: Arc::clone(&rec_seq),
                    remaining: 200,
                }),
            );
        }
        seq.run_until(100 * MILLISECOND);
        let rec_par = ThroughputRecorder::new(SECOND);
        let mut par = Driver::new();
        for c in 0..5 {
            par.add(
                0,
                Box::new(Ticker {
                    period: (c + 1) * MILLISECOND,
                    fired: Arc::clone(&rec_par),
                    remaining: 200,
                }),
            );
        }
        par.set_lookahead(MILLISECOND);
        par.run_until_parallel(100 * MILLISECOND, 8);
        assert_eq!(par.clocks(), seq.clocks());
        assert_eq!(par.steps(), seq.steps());
        assert_eq!(rec_par.total(), rec_seq.total());
    }

    #[test]
    fn recorder_rates_and_series() {
        let rec = ThroughputRecorder::new(MINUTE);
        for i in 0..60 {
            rec.record(i * SECOND); // 60 events in minute 0
        }
        for i in 0..30 {
            rec.record(MINUTE + i * 2 * SECOND); // 30 events in minute 1
        }
        assert_eq!(rec.total(), 90);
        assert!((rec.count_between(0, MINUTE) - 60.0).abs() < 1e-9);
        assert!((rec.rate_between(0, 2 * MINUTE, MINUTE) - 45.0).abs() < 1e-9);
        let series = rec.series_per_minute();
        assert_eq!(series.len(), 2);
        assert!((series[0].1 - 60.0).abs() < 1e-9);
        assert!((series[1].1 - 30.0).abs() < 1e-9);
    }
}
