//! TPC-H-lite: the scan-dominated decision-support workload.
//!
//! Twenty-two query templates over LINEITEM/ORDERS/CUSTOMER/PART/SUPPLIER,
//! each realized as one of four plan shapes:
//!
//! * **A** — full LINEITEM scan with aggregation (Q1/Q6-like): pure
//!   sequential I/O through the read-ahead path, never admitted to the SSD.
//! * **B** — index nested-loop over a selective ORDERS range, probing
//!   LINEITEM through its index: the *random* LINEITEM lookups the paper
//!   credits for TPC-H's SSD speedups (§4.4). LINEITEM rows are loaded in
//!   scrambled order, so probes scatter physically (a non-clustered access
//!   pattern).
//! * **C** — ORDERS scan joined to CUSTOMER by index probes (mixed).
//! * **D** — small-table (PART/SUPPLIER) scans plus a few LINEITEM probes.
//!
//! The power test runs the 22 queries plus RF1/RF2 serially; the
//! throughput test runs several permuted streams concurrently plus a
//! refresh stream, per the benchmark's structure. Metrics follow the
//! spec's formulas (Power@SF, Throughput@SF, QphH = their geometric mean).

use std::sync::Arc;

use turbopool_engine::{bulk_load_heap, bulk_load_index, Database, HeapId, IndexId};
use turbopool_iosim::rng::Rng;
use turbopool_iosim::rng::SmallRng;
use turbopool_iosim::sync::Mutex;
use turbopool_iosim::{Clk, Time, MILLISECOND, SECOND};

use crate::driver::{Client, Driver, StepResult};
use crate::rand_util::client_rng;
use crate::scenario::{build_db, Design, SystemSpec, SCALE};

/// Scaled rows per SF unit.
pub const LINEITEM_PER_SF: u64 = 6_000;
pub const ORDERS_PER_SF: u64 = 1_500;
pub const CUSTOMER_PER_SF: u64 = 150;
pub const PART_PER_SF: u64 = 200;
pub const SUPPLIER_PER_SF: u64 = 15;
/// Lines per order.
pub const LINES_PER_ORDER: u64 = 4;

const REC: usize = 128;

/// CPU charged per page aggregated during a scan (time-scaled: ~25 µs of
/// real per-page aggregation work).
const CPU_PER_PAGE: Time = 25 * SCALE as Time * MILLISECOND / 1000;
/// CPU charged per index probe.
const CPU_PER_PROBE: Time = SCALE as Time * MILLISECOND / 1000;

fn pages_for(rows: u64, page_size: usize) -> u64 {
    let slots = (page_size / (1 + REC)) as u64;
    rows.div_ceil(slots)
}

fn index_extent(keys: u64, page_size: usize) -> u64 {
    let cap = ((page_size - 16) / 16) as f64 * 0.7;
    ((keys as f64 / cap * 1.6) as u64).max(8) + 8
}

/// Plan shape of a query template.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Shape {
    ScanLineitem,
    IndexJoin,
    OrdersCustomer,
    SmallTables,
}

/// The 22 query templates: (shape, selectivity fraction).
/// Shapes and fractions are chosen so scan queries dominate elapsed time
/// while several queries are gated by random LINEITEM index lookups — the
/// workload structure §4.4 describes.
const QUERIES: [(Shape, f64); 22] = [
    (Shape::ScanLineitem, 1.0),    // Q1
    (Shape::SmallTables, 0.02),    // Q2
    (Shape::OrdersCustomer, 0.30), // Q3
    (Shape::IndexJoin, 0.00060),   // Q4
    (Shape::OrdersCustomer, 0.20), // Q5
    (Shape::ScanLineitem, 1.0),    // Q6
    (Shape::OrdersCustomer, 0.25), // Q7
    (Shape::OrdersCustomer, 0.15), // Q8
    (Shape::IndexJoin, 0.00070),   // Q9
    (Shape::OrdersCustomer, 0.25), // Q10
    (Shape::SmallTables, 0.05),    // Q11
    (Shape::IndexJoin, 0.00050),   // Q12
    (Shape::OrdersCustomer, 0.50), // Q13
    (Shape::ScanLineitem, 1.0),    // Q14
    (Shape::ScanLineitem, 1.0),    // Q15
    (Shape::SmallTables, 0.10),    // Q16
    (Shape::IndexJoin, 0.00025),   // Q17
    (Shape::IndexJoin, 0.00080),   // Q18
    (Shape::IndexJoin, 0.00030),   // Q19
    (Shape::IndexJoin, 0.00035),   // Q20
    (Shape::IndexJoin, 0.00070),   // Q21
    (Shape::OrdersCustomer, 0.10), // Q22
];

/// Lineitem index key.
pub fn li_key(orderkey: u64, line: u64) -> u64 {
    orderkey * LINES_PER_ORDER + line
}

struct RfState {
    next_orderkey: u64,
    inserted: Vec<u64>,
}

/// One TPC-H database.
pub struct Tpch {
    pub db: Arc<Database>,
    pub sf: u64,
    h_lineitem: HeapId,
    h_orders: HeapId,
    h_customer: HeapId,
    h_part: HeapId,
    h_supplier: HeapId,
    i_lineitem: IndexId,
    i_orders: IndexId,
    seed: u64,
    rf: Mutex<RfState>,
}

impl Tpch {
    pub fn orders_rows(sf: u64) -> u64 {
        sf * ORDERS_PER_SF
    }

    /// Pages needed at scale factor `sf` (with refresh growth headroom).
    pub fn db_pages(sf: u64, page_size: usize) -> u64 {
        let li = sf * LINEITEM_PER_SF;
        let ord = sf * ORDERS_PER_SF;
        pages_for(li * 11 / 10, page_size)
            + pages_for(ord * 11 / 10, page_size)
            + pages_for(sf * CUSTOMER_PER_SF, page_size)
            + pages_for(sf * PART_PER_SF, page_size)
            + pages_for(sf * SUPPLIER_PER_SF, page_size)
            + index_extent(li * 11 / 10, page_size)
            + index_extent(ord * 11 / 10, page_size)
            + 2
            + 64
    }

    /// Build and bulk-load a TPC-H database at scale factor `sf`.
    pub fn setup(design: Design, sf: u64, lambda: f64) -> Tpch {
        let page_size = crate::scenario::PAGE_SIZE;
        let mut spec = SystemSpec::paper(design, Self::db_pages(sf, page_size));
        spec.lambda = lambda;
        let db = build_db(&spec);
        let mut clk = Clk::new();
        let li = sf * LINEITEM_PER_SF;
        let ord = sf * ORDERS_PER_SF;

        let h_lineitem = db.create_heap(
            &mut clk,
            "lineitem",
            REC,
            pages_for(li * 11 / 10, page_size),
        );
        let h_orders = db.create_heap(&mut clk, "orders", REC, pages_for(ord * 11 / 10, page_size));
        let h_customer = db.create_heap(
            &mut clk,
            "customer",
            REC,
            pages_for(sf * CUSTOMER_PER_SF, page_size),
        );
        let h_part = db.create_heap(
            &mut clk,
            "part",
            REC,
            pages_for(sf * PART_PER_SF, page_size),
        );
        let h_supplier = db.create_heap(
            &mut clk,
            "supplier",
            REC,
            pages_for(sf * SUPPLIER_PER_SF, page_size),
        );
        let i_lineitem = db.create_index(
            &mut clk,
            "lineitem_pk",
            index_extent(li * 11 / 10, page_size),
        );
        let i_orders = db.create_index(
            &mut clk,
            "orders_pk",
            index_extent(ord * 11 / 10, page_size),
        );

        let rec_of = |tag: u64, a: u64, b: u64| {
            let mut r = vec![0u8; REC];
            r[0..8].copy_from_slice(&tag.to_le_bytes());
            r[8..16].copy_from_slice(&a.to_le_bytes());
            r[16..24].copy_from_slice(&b.to_le_bytes());
            r
        };
        // LINEITEM loaded in scrambled physical order: logical line i of
        // the table sits at rid i, but holds the *scrambled* line's data,
        // and the index maps each logical key to its scattered rid.
        let scramble = |i: u64| -> u64 { i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % (li) };
        let mut line_pairs: Vec<(u64, u64)> = Vec::with_capacity(li as usize);
        bulk_load_heap(
            &db,
            h_lineitem,
            (0..li).map(|rid| {
                let logical = scramble(rid);
                rec_of(logical, logical / LINES_PER_ORDER, logical % 100)
            }),
        );
        for rid in 0..li {
            line_pairs.push((scramble(rid), rid));
        }
        line_pairs.sort_unstable();
        line_pairs.dedup_by_key(|p| p.0);
        bulk_load_index(&db, i_lineitem, line_pairs, 0.7);

        bulk_load_heap(
            &db,
            h_orders,
            (0..ord).map(|o| rec_of(o, o % (sf * CUSTOMER_PER_SF), o % 365)),
        );
        bulk_load_index(&db, i_orders, (0..ord).map(|o| (o, o)), 0.7);
        bulk_load_heap(
            &db,
            h_customer,
            (0..sf * CUSTOMER_PER_SF).map(|c| rec_of(c, c % 25, 0)),
        );
        bulk_load_heap(
            &db,
            h_part,
            (0..sf * PART_PER_SF).map(|p| rec_of(p, p % 50, 0)),
        );
        bulk_load_heap(
            &db,
            h_supplier,
            (0..sf * SUPPLIER_PER_SF).map(|s| rec_of(s, s % 25, 0)),
        );

        Tpch {
            db,
            sf,
            h_lineitem,
            h_orders,
            h_customer,
            h_part,
            h_supplier,
            i_lineitem,
            i_orders,
            seed: spec.seed,
            rf: Mutex::new(RfState {
                next_orderkey: ord,
                inserted: Vec::new(),
            }),
        }
    }

    // ------------------------------------------------------------------
    // Query execution
    // ------------------------------------------------------------------

    /// Run query template `q` (1-based); returns its virtual duration.
    pub fn run_query(&self, clk: &mut Clk, q: usize, rng: &mut SmallRng) -> Time {
        let start = clk.now;
        let (shape, frac) = QUERIES[q - 1];
        match shape {
            Shape::ScanLineitem => self.scan_lineitem(clk),
            Shape::IndexJoin => self.index_join(clk, frac, rng),
            Shape::OrdersCustomer => self.orders_customer(clk, frac, rng),
            Shape::SmallTables => self.small_tables(clk, frac, rng),
        }
        clk.now - start
    }

    fn scan_lineitem(&self, clk: &mut Clk) {
        let mut rows = 0u64;
        let mut acc = 0u64;
        self.db
            .scan_heap(clk, self.h_lineitem, |_, rec| {
                rows += 1;
                acc = acc.wrapping_add(u64::from_le_bytes(rec[16..24].try_into().unwrap()));
            })
            .unwrap();
        let pages = self.db.heap_meta(self.h_lineitem).used_pages();
        clk.elapse(pages * CPU_PER_PAGE);
        std::hint::black_box(acc);
    }

    fn index_join(&self, clk: &mut Clk, frac: f64, rng: &mut SmallRng) {
        let orders = Self::orders_rows(self.sf);
        let count = ((orders as f64 * frac) as u64).max(1);
        let start = rng.gen_range(0..orders.saturating_sub(count).max(1));
        let mut txn = self.db.begin(clk);
        for o in start..start + count {
            let Some(orid) = txn.index_get(self.i_orders, o) else {
                continue;
            };
            txn.heap_get(self.h_orders, orid);
            // Probe the order's lines through the index: random I/O into
            // the scrambled LINEITEM heap.
            let lines = txn.index_range(
                self.i_lineitem,
                li_key(o, 0),
                li_key(o, LINES_PER_ORDER - 1),
                LINES_PER_ORDER as usize,
            );
            for (_, lrid) in lines {
                txn.heap_get(self.h_lineitem, lrid);
            }
            txn.clk.elapse(CPU_PER_PROBE);
        }
        txn.commit();
    }

    fn orders_customer(&self, clk: &mut Clk, frac: f64, rng: &mut SmallRng) {
        // Scan ORDERS; probe CUSTOMER for a sampled subset of rows.
        let customers = self.sf * CUSTOMER_PER_SF;
        let target_probes = ((2_000.0 * frac) as u64).max(10);
        let orders = Self::orders_rows(self.sf);
        let every = (orders / target_probes).max(1);
        let offset = rng.gen_range(0..every);
        let mut probes: Vec<u64> = Vec::new();
        self.db
            .scan_heap(clk, self.h_orders, |rid, rec| {
                if rid % every == offset {
                    let cust = u64::from_le_bytes(rec[8..16].try_into().unwrap());
                    probes.push(cust % customers);
                }
            })
            .unwrap();
        let pages = self.db.heap_meta(self.h_orders).used_pages();
        clk.elapse(pages * CPU_PER_PAGE);
        let mut txn = self.db.begin(clk);
        for c in probes {
            txn.heap_get(self.h_customer, c);
            txn.clk.elapse(CPU_PER_PROBE);
        }
        txn.commit();
    }

    fn small_tables(&self, clk: &mut Clk, frac: f64, rng: &mut SmallRng) {
        let mut acc = 0u64;
        self.db
            .scan_heap(clk, self.h_part, |_, rec| {
                acc = acc.wrapping_add(rec[8] as u64);
            })
            .unwrap();
        self.db
            .scan_heap(clk, self.h_supplier, |_, rec| {
                acc = acc.wrapping_add(rec[8] as u64);
            })
            .unwrap();
        let pages = self.db.heap_meta(self.h_part).used_pages()
            + self.db.heap_meta(self.h_supplier).used_pages();
        clk.elapse(pages * CPU_PER_PAGE);
        std::hint::black_box(acc);
        // A few LINEITEM probes.
        let li = self.sf * LINEITEM_PER_SF;
        let probes = ((li as f64 * frac * 0.01) as u64).max(5);
        let mut txn = self.db.begin(clk);
        for _ in 0..probes {
            let k = rng.gen_range(0..li);
            if let Some(rid) = txn.index_get(self.i_lineitem, k) {
                txn.heap_get(self.h_lineitem, rid);
            }
            txn.clk.elapse(CPU_PER_PROBE);
        }
        txn.commit();
    }

    /// RF1: insert a batch of new orders with their lines; returns its
    /// virtual duration.
    pub fn rf1(&self, clk: &mut Clk) -> Time {
        let start = clk.now;
        let n = (self.sf * 3 / 2).max(8);
        let first = {
            let mut rf = self.rf.lock();
            let first = rf.next_orderkey;
            rf.next_orderkey += n;
            rf.inserted.extend(first..first + n);
            first
        };
        let mut txn = self.db.begin(clk);
        for o in first..first + n {
            let mut rec = vec![0u8; REC];
            rec[0..8].copy_from_slice(&o.to_le_bytes());
            let orid = txn.heap_insert(self.h_orders, &rec).expect("orders full");
            txn.index_insert(self.i_orders, o, orid);
            for l in 0..LINES_PER_ORDER {
                let mut lrec = vec![0u8; REC];
                lrec[0..8].copy_from_slice(&li_key(o, l).to_le_bytes());
                let lrid = txn.heap_insert(self.h_lineitem, &lrec).expect("li full");
                txn.index_insert(self.i_lineitem, li_key(o, l), lrid);
            }
        }
        txn.commit();
        clk.now - start
    }

    /// RF2: delete the oldest refresh batch; returns its virtual duration.
    pub fn rf2(&self, clk: &mut Clk) -> Time {
        let start = clk.now;
        let n = (self.sf * 3 / 2).max(8) as usize;
        let victims: Vec<u64> = {
            let mut rf = self.rf.lock();
            let take = n.min(rf.inserted.len());
            rf.inserted.drain(..take).collect()
        };
        let mut txn = self.db.begin(clk);
        for o in victims {
            if let Some(orid) = txn.index_get(self.i_orders, o) {
                txn.heap_delete(self.h_orders, orid);
                txn.index_delete(self.i_orders, o);
            }
            for l in 0..LINES_PER_ORDER {
                if let Some(lrid) = txn.index_get(self.i_lineitem, li_key(o, l)) {
                    txn.heap_delete(self.h_lineitem, lrid);
                    txn.index_delete(self.i_lineitem, li_key(o, l));
                }
            }
        }
        txn.commit();
        clk.now - start
    }

    // ------------------------------------------------------------------
    // Power & throughput tests
    // ------------------------------------------------------------------

    /// The power test: RF1, the 22 queries serially, RF2 — all timed.
    pub fn power_test(self: &Arc<Self>, clk: &mut Clk) -> PowerResult {
        let mut rng = client_rng(self.seed, 1_000);
        let mut timings = Vec::with_capacity(24);
        timings.push(("RF1".to_string(), self.rf1(clk)));
        for q in 1..=22 {
            let t = self.run_query(clk, q, &mut rng);
            timings.push((format!("Q{q}"), t));
        }
        timings.push(("RF2".to_string(), self.rf2(clk)));
        // Power@SF = 3600 * SF / geomean(all 24 timings in seconds).
        let geo = geomean_secs(timings.iter().map(|(_, t)| *t));
        PowerResult {
            power: 3600.0 * self.sf as f64 / geo,
            timings,
        }
    }

    /// The throughput test: `streams` concurrent query streams (each runs
    /// the 22 queries in a rotated order) plus one refresh stream running
    /// `streams` RF pairs.
    pub fn throughput_test(self: &Arc<Self>, streams: usize) -> f64 {
        let mut driver = Driver::new();
        for s in 0..streams {
            driver.add(
                0,
                Box::new(QueryStream {
                    t: Arc::clone(self),
                    rng: client_rng(self.seed, 2_000 + s as u64),
                    order: rotated_order(s),
                    next: 0,
                }),
            );
        }
        driver.add(
            0,
            Box::new(RefreshStream {
                t: Arc::clone(self),
                remaining: streams,
            }),
        );
        // Elapsed = the time the slowest stream finishes.
        let mut end = 0;
        driver.run_to_completion();
        // Recover the end time: re-derive from the database's virtual
        // device state is fragile; instead streams report via rf state —
        // simpler: track with a recorder. (Streams record their finish.)
        let _ = &mut end;
        let ts = FINISH_TIME.with(|f| f.get());
        let ts_secs = ts as f64 / SECOND as f64;
        streams as f64 * 22.0 * 3600.0 / ts_secs * self.sf as f64
    }
}

thread_local! {
    /// Latest stream finish time within this thread's throughput test.
    static FINISH_TIME: std::cell::Cell<Time> = const { std::cell::Cell::new(0) };
}

fn rotated_order(stream: usize) -> Vec<usize> {
    let mut v: Vec<usize> = (1..=22).collect();
    v.rotate_left((stream * 7) % 22);
    v
}

fn geomean_secs(timings: impl Iterator<Item = Time>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for t in timings {
        let secs = (t as f64 / SECOND as f64).max(1e-6);
        log_sum += secs.ln();
        n += 1;
    }
    (log_sum / n as f64).exp()
}

/// Power-test output.
pub struct PowerResult {
    /// Power@SF.
    pub power: f64,
    /// Per-item timings (RF1, Q1..Q22, RF2).
    pub timings: Vec<(String, Time)>,
}

/// The composite metric: QphH@SF = sqrt(Power * Throughput).
pub fn qphh(power: f64, throughput: f64) -> f64 {
    (power * throughput).sqrt()
}

struct QueryStream {
    t: Arc<Tpch>,
    rng: SmallRng,
    order: Vec<usize>,
    next: usize,
}

impl Client for QueryStream {
    fn step(&mut self, clk: &mut Clk) -> StepResult {
        if self.next >= self.order.len() {
            return StepResult::Done;
        }
        let q = self.order[self.next];
        self.next += 1;
        self.t.run_query(clk, q, &mut self.rng);
        if self.next >= self.order.len() {
            FINISH_TIME.with(|f| f.set(f.get().max(clk.now)));
            return StepResult::Done;
        }
        StepResult::Continue
    }
}

struct RefreshStream {
    t: Arc<Tpch>,
    remaining: usize,
}

impl Client for RefreshStream {
    fn step(&mut self, clk: &mut Clk) -> StepResult {
        if self.remaining == 0 {
            return StepResult::Done;
        }
        self.t.rf1(clk);
        self.t.rf2(clk);
        self.remaining -= 1;
        if self.remaining == 0 {
            FINISH_TIME.with(|f| f.set(f.get().max(clk.now)));
            StepResult::Done
        } else {
            StepResult::Continue
        }
    }
}

/// Reset the throughput test's finish-time tracker (call before each test
/// when running several in one thread).
pub fn reset_finish_time() {
    FINISH_TIME.with(|f| f.set(0));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing_matches_paper_targets() {
        // SF 100 ≈ 160 GB.
        let pages = Tpch::db_pages(100, crate::scenario::PAGE_SIZE);
        let target = crate::scenario::gb_to_pages(160.0);
        let ratio = pages as f64 / target as f64;
        assert!((0.7..1.3).contains(&ratio), "pages {pages} target {target}");
    }

    #[test]
    fn scan_query_is_sequential_dominated() {
        let t = Arc::new(Tpch::setup(Design::NoSsd, 2, 0.01));
        let mut clk = Clk::new();
        let mut rng = client_rng(0, 0);
        t.run_query(&mut clk, 1, &mut rng); // Q1: full lineitem scan
        let s = t.db.io().disk_stats();
        // Multi-page sequential requests: far fewer ops than pages.
        assert!(s.read_pages > 3 * s.read_ops, "{s:?}");
    }

    #[test]
    fn index_join_issues_random_lineitem_reads() {
        let t = Arc::new(Tpch::setup(Design::NoSsd, 2, 0.01));
        let mut clk = Clk::new();
        let mut rng = client_rng(0, 0);
        let before = t.db.pool_stats().misses;
        t.run_query(&mut clk, 18, &mut rng); // Q18: index join
        let after = t.db.pool_stats().misses;
        assert!(after > before + 5, "index join should miss randomly");
    }

    #[test]
    fn rf_pair_round_trips() {
        let t = Arc::new(Tpch::setup(Design::NoSsd, 1, 0.01));
        let mut clk = Clk::new();
        let before =
            t.db.heap_meta(t.h_orders)
                .next
                .load(std::sync::atomic::Ordering::Relaxed);
        t.rf1(&mut clk);
        let mid =
            t.db.heap_meta(t.h_orders)
                .next
                .load(std::sync::atomic::Ordering::Relaxed);
        assert!(mid > before);
        t.rf2(&mut clk);
        // Deletions leave holes (slots not reused) but index entries gone.
        let mut txn = t.db.begin(&mut clk);
        let key = Tpch::orders_rows(1); // first refresh order key
        assert_eq!(txn.index_get(t.i_orders, key), None);
        txn.commit();
    }

    #[test]
    fn power_test_produces_metric() {
        let t = Arc::new(Tpch::setup(Design::Dw, 1, 0.01));
        let mut clk = Clk::new();
        let r = t.power_test(&mut clk);
        assert_eq!(r.timings.len(), 24);
        assert!(r.power > 0.0);
        assert!(r.timings.iter().all(|(_, t)| *t > 0));
    }

    #[test]
    fn throughput_test_produces_metric() {
        reset_finish_time();
        let t = Arc::new(Tpch::setup(Design::Dw, 1, 0.01));
        let tput = t.throughput_test(2);
        assert!(tput > 0.0, "{tput}");
    }

    #[test]
    fn qphh_is_geometric_mean() {
        assert!((qphh(100.0, 400.0) - 200.0).abs() < 1e-9);
    }
}
