//! Scoped worker pool for the parallel driver — the only module in the
//! workspace allowed to spawn OS threads (lint rule L7 `thread-spawn`).
//!
//! Threads exist here purely as an execution resource: each worker owns
//! a disjoint set of domain groups, runs them through
//! [`crate::driver::run_group`] (a pure function of its inputs), and
//! hands the outcomes back positionally. No locks, no channels, no
//! shared mutable state — so the scheduling of workers onto cores
//! cannot influence any result, only wall-clock time.

use turbopool_iosim::Time;

use crate::driver::{run_group, Slot, WindowOutcome};

/// Run each domain group through the window on up to `threads` OS
/// threads, returning outcomes in the same order as `groups`.
///
/// Groups are dealt round-robin across workers; each worker processes
/// its hand in order and tags every outcome with the group's original
/// index, so reassembly is position-exact regardless of which worker
/// finishes first.
pub(crate) fn run_groups(
    groups: Vec<Vec<(Time, usize, Slot)>>,
    window_end: Time,
    threads: usize,
) -> Vec<WindowOutcome> {
    let n = groups.len();
    let workers = threads.min(n).max(1);
    let mut hands: Vec<Vec<(usize, Vec<(Time, usize, Slot)>)>> = Vec::new();
    hands.resize_with(workers, Vec::new);
    for (idx, group) in groups.into_iter().enumerate() {
        hands[idx % workers].push((idx, group));
    }
    let mut out: Vec<Option<WindowOutcome>> = Vec::new();
    out.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = hands
            .into_iter()
            .map(|hand| {
                scope.spawn(move || {
                    hand.into_iter()
                        .map(|(idx, group)| (idx, run_group(group, window_end)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (idx, outcome) in handle.join().expect("driver worker panicked") {
                out[idx] = Some(outcome);
            }
        }
    });
    out.into_iter()
        .map(|o| o.expect("every group produced an outcome"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{Client, StepResult};
    use turbopool_iosim::Clk;

    struct Counter {
        period: Time,
        left: usize,
    }

    impl Client for Counter {
        fn step(&mut self, clk: &mut Clk) -> StepResult {
            if self.left == 0 {
                return StepResult::Done;
            }
            clk.elapse(self.period);
            self.left -= 1;
            StepResult::Continue
        }
    }

    fn slot(start: Time, period: Time, left: usize, domain: usize) -> Slot {
        Slot {
            clk: Clk::at(start),
            client: Box::new(Counter { period, left }),
            domain,
        }
    }

    #[test]
    fn outcomes_come_back_in_group_order() {
        // 5 groups over 2 threads: round-robin dealing must not permute
        // the outcome order.
        let groups: Vec<Vec<(Time, usize, Slot)>> = (0..5)
            .map(|g| vec![(0, g, slot(0, (g as Time + 1) * 10, 3 + g, g))])
            .collect();
        let out = run_groups(groups, Time::MAX, 2);
        assert_eq!(out.len(), 5);
        for (g, outcome) in out.iter().enumerate() {
            // Counter runs `left` Continue steps plus one Done step, and
            // Done clients never re-arrive.
            assert_eq!(outcome.steps, 3 + g as u64 + 1);
            assert!(outcome.arrivals.is_empty());
        }
    }

    #[test]
    fn window_end_bounds_every_group() {
        let groups: Vec<Vec<(Time, usize, Slot)>> = (0..3)
            .map(|g| vec![(0, g, slot(0, 10, usize::MAX, g))])
            .collect();
        let out = run_groups(groups, 100, 3);
        for outcome in &out {
            assert_eq!(outcome.arrivals.len(), 1);
            assert_eq!(outcome.arrivals[0].time, 100);
            assert_eq!(outcome.steps, 10);
        }
    }
}
