//! Synthetic single-table workloads for the ablation benchmarks.
//!
//! A configurable client that issues point reads/updates over one big
//! table with Zipf-distributed record choice — the minimal harness for
//! isolating one SSD-manager mechanism at a time (throttle control,
//! partitioning, filling, classifier accuracy).

use std::sync::Arc;

use turbopool_engine::{bulk_load_heap, bulk_load_index, Database, HeapId, IndexId};
use turbopool_iosim::rng::Rng;
use turbopool_iosim::rng::SmallRng;
use turbopool_iosim::{Clk, Time, MILLISECOND};

use crate::driver::{Client, StepResult, ThroughputRecorder};
use crate::rand_util::{client_rng, Zipf};
use crate::scenario::{build_db, Design, SystemSpec, SCALE};

/// Synthetic workload parameters.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Rows in the table.
    pub rows: u64,
    /// Record size in bytes.
    pub record_size: usize,
    /// Zipf skew over rows (0 = uniform).
    pub theta: f64,
    /// Fraction of operations that update (0.0 – 1.0).
    pub update_frac: f64,
    /// Operations batched into one transaction.
    pub ops_per_txn: usize,
    /// Access records through the index (random I/O) instead of direct
    /// RIDs.
    pub via_index: bool,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            rows: 100_000,
            record_size: 192,
            theta: 0.9,
            update_frac: 0.33,
            ops_per_txn: 10,
            via_index: true,
        }
    }
}

/// The loaded table + index.
pub struct Synthetic {
    pub db: Arc<Database>,
    pub cfg: SyntheticConfig,
    pub heap: HeapId,
    pub index: IndexId,
    seed: u64,
}

impl Synthetic {
    /// Pages needed for the table and its index.
    pub fn db_pages(cfg: &SyntheticConfig, page_size: usize) -> u64 {
        let slots = (page_size / (1 + cfg.record_size)) as u64;
        let heap = cfg.rows.div_ceil(slots);
        let leaf_cap = ((page_size - 16) / 16) as f64 * 0.7;
        let idx = (cfg.rows as f64 / leaf_cap * 1.4) as u64 + 16;
        heap + idx + 16
    }

    /// Build and load under the given design, with overrides applied to
    /// the spec by `tweak`.
    pub fn setup(
        design: Design,
        cfg: SyntheticConfig,
        tweak: impl FnOnce(&mut SystemSpec),
    ) -> Synthetic {
        let page_size = crate::scenario::PAGE_SIZE;
        let mut spec = SystemSpec::paper(design, Self::db_pages(&cfg, page_size));
        tweak(&mut spec);
        let db = build_db(&spec);
        let mut clk = Clk::new();
        let heap = db.create_heap(
            &mut clk,
            "data",
            cfg.record_size,
            cfg.rows
                .div_ceil((page_size / (1 + cfg.record_size)) as u64),
        );
        let leaf_cap = ((page_size - 16) / 16) as f64 * 0.7;
        let index = db.create_index(
            &mut clk,
            "data_pk",
            (cfg.rows as f64 / leaf_cap * 1.4) as u64 + 16,
        );
        bulk_load_heap(
            &db,
            heap,
            (0..cfg.rows).map(|i| {
                let mut r = vec![0u8; cfg.record_size];
                r[0..8].copy_from_slice(&i.to_le_bytes());
                r
            }),
        );
        bulk_load_index(&db, index, (0..cfg.rows).map(|k| (k, k)), 0.7);
        Synthetic {
            db,
            cfg,
            heap,
            index,
            seed: spec.seed,
        }
    }

    /// Crash the database and recover it, rebinding the workload handles
    /// (crash-restart experiments). Requires sole ownership of the
    /// `Database` Arc — drop all clients first.
    pub fn crash_and_recover(self) -> (Synthetic, turbopool_wal::RecoveryStats) {
        let Synthetic {
            db,
            cfg,
            heap,
            index,
            seed,
        } = self;
        let db = Arc::try_unwrap(db)
            .ok()
            .expect("other Database handles still alive");
        let (db2, stats) = Database::recover(db.crash());
        (
            Synthetic {
                db: Arc::new(db2),
                cfg,
                heap,
                index,
                seed,
            },
            stats,
        )
    }

    pub fn client(
        self: &Arc<Self>,
        client_no: u64,
        rec: Arc<ThroughputRecorder>,
    ) -> SyntheticClient {
        SyntheticClient {
            s: Arc::clone(self),
            zipf: Zipf::new(self.cfg.rows as usize, self.cfg.theta),
            rng: client_rng(self.seed, client_no),
            rec,
        }
    }
}

/// CPU per synthetic transaction (time-scaled).
const CPU_TXN: Time = SCALE as Time * MILLISECOND / 1000;

/// One synthetic client.
pub struct SyntheticClient {
    s: Arc<Synthetic>,
    zipf: Zipf,
    rng: SmallRng,
    rec: Arc<ThroughputRecorder>,
}

impl Client for SyntheticClient {
    fn step(&mut self, clk: &mut Clk) -> StepResult {
        let cfg = self.s.cfg.clone();
        clk.elapse(CPU_TXN);
        let mut txn = self.s.db.begin(clk);
        for _ in 0..cfg.ops_per_txn {
            // Scramble zipf ranks across the key space so hot records
            // spread over pages (rank 0 is hottest, not key 0).
            let rank = self.zipf.sample(&mut self.rng) as u64;
            let key = rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % cfg.rows;
            let rid = if cfg.via_index {
                match txn.index_get(self.s.index, key) {
                    Some(r) => r,
                    None => continue,
                }
            } else {
                key
            };
            if self.rng.gen_bool(cfg.update_frac) {
                if let Some(mut rec) = txn.heap_get(self.s.heap, rid) {
                    let v = u64::from_le_bytes(rec[8..16].try_into().unwrap());
                    rec[8..16].copy_from_slice(&(v + 1).to_le_bytes());
                    txn.heap_update(self.s.heap, rid, &rec);
                }
            } else {
                txn.heap_get(self.s.heap, rid);
            }
        }
        txn.commit();
        self.rec.record(clk.now);
        StepResult::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Driver;
    use turbopool_iosim::MINUTE;

    fn small() -> SyntheticConfig {
        SyntheticConfig {
            rows: 5_000,
            ..Default::default()
        }
    }

    #[test]
    fn runs_and_commits() {
        let s = Arc::new(Synthetic::setup(Design::Dw, small(), |spec| {
            spec.mem_frames = 64;
            spec.ssd_frames = 256;
        }));
        let rec = ThroughputRecorder::new(MINUTE);
        let mut d = Driver::new();
        for c in 0..4 {
            d.add(0, Box::new(s.client(c, Arc::clone(&rec))));
        }
        d.run_until(10 * MINUTE);
        assert!(rec.total() > 20, "{}", rec.total());
        // Updates flowed into the SSD via evictions eventually.
        let m = s.db.ssd_metrics().unwrap();
        assert!(m.admissions > 0);
    }

    #[test]
    fn skewed_run_hits_ssd_after_warmup() {
        let s = Arc::new(Synthetic::setup(Design::Lc, small(), |spec| {
            spec.mem_frames = 32;
            spec.ssd_frames = 512;
        }));
        let rec = ThroughputRecorder::new(MINUTE);
        let mut d = Driver::new();
        d.add(0, Box::new(s.client(0, Arc::clone(&rec))));
        d.run_until(60 * MINUTE);
        let m = s.db.ssd_metrics().unwrap();
        assert!(m.ssd_hits > 0, "{m:?}");
    }
}
