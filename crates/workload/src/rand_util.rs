//! Random distributions used by the workload generators.

use turbopool_iosim::rng::Rng;
use turbopool_iosim::rng::SmallRng;

/// TPC-C's non-uniform random function NURand(A, x, y):
/// `(((rand(0,A) | rand(x,y)) + C) % (y - x + 1)) + x`.
///
/// The bitwise OR concentrates the distribution on a hot subset — this is
/// the skew behind the paper's observation that 75% of TPC-C accesses go
/// to about 20% of the pages.
pub fn nurand(rng: &mut SmallRng, a: u64, c: u64, x: u64, y: u64) -> u64 {
    debug_assert!(x <= y);
    let r1 = rng.gen_range(0..=a);
    let r2 = rng.gen_range(x..=y);
    (((r1 | r2) + c) % (y - x + 1)) + x
}

/// A Zipf(θ) sampler over `0..n` using the precomputed-CDF method.
/// θ = 0 degenerates to uniform; θ ≈ 0.99 is the YCSB-style hot-spot
/// distribution.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut sum = 0.0;
        for i in 1..=n {
            sum += 1.0 / (i as f64).powf(theta);
            cdf.push(sum);
        }
        for v in &mut cdf {
            *v /= sum;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `0..n` (0 is the hottest).
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Deterministic per-run RNG seeding: one base seed, one stream per
/// client, so adding clients does not perturb existing streams.
pub fn client_rng(base_seed: u64, client: u64) -> SmallRng {
    use turbopool_iosim::rng::SeedableRng;
    SmallRng::seed_from_u64(base_seed ^ client.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nurand_stays_in_range() {
        let mut rng = client_rng(1, 0);
        for _ in 0..10_000 {
            let v = nurand(&mut rng, 1023, 42, 1, 3000);
            assert!((1..=3000).contains(&v));
        }
    }

    #[test]
    fn nurand_is_skewed() {
        // The bitwise OR concentrates mass on ids with many set low bits:
        // the hottest 10% of ids should draw far more than 10% of samples.
        let mut rng = client_rng(7, 1);
        let n = 1024u64;
        let total = 100_000u64;
        let mut counts = vec![0u64; n as usize];
        for _ in 0..total {
            let v = nurand(&mut rng, 1023, 7, 0, n - 1);
            counts[v as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let head: u64 = counts[..(n as usize / 10)].iter().sum();
        let frac = head as f64 / total as f64;
        assert!(frac > 0.4, "hot 10% drew only {frac:.2} of samples");
    }

    #[test]
    fn zipf_theta_zero_is_uniformish() {
        let z = Zipf::new(100, 0.0);
        let mut rng = client_rng(3, 0);
        let mut counts = vec![0u64; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let (min, max) = (
            *counts.iter().min().unwrap() as f64,
            *counts.iter().max().unwrap() as f64,
        );
        assert!(max / min < 1.5, "min {min} max {max}");
    }

    #[test]
    fn zipf_high_theta_concentrates() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = client_rng(3, 1);
        let mut head = 0u64;
        let total = 100_000;
        for _ in 0..total {
            if z.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // Top 10% of ranks should draw the majority of samples.
        assert!(head as f64 / total as f64 > 0.5, "head {head}");
    }

    #[test]
    fn client_rngs_are_independent_and_deterministic() {
        let mut a1 = client_rng(9, 0);
        let mut a2 = client_rng(9, 0);
        let mut b = client_rng(9, 1);
        let xs: Vec<u64> = (0..5).map(|_| a1.gen()).collect();
        let ys: Vec<u64> = (0..5).map(|_| a2.gen()).collect();
        let zs: Vec<u64> = (0..5).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}
