//! TPC-C-lite: the update-intensive, highly skewed OLTP workload.
//!
//! A scaled-down TPC-C with the properties the paper's analysis leans on:
//! the standard five-transaction mix (NewOrder 45%, Payment 43%,
//! OrderStatus / Delivery / StockLevel 4% each), NURand skew ("75% of the
//! accesses are to about 20% of the pages"), roughly one write access per
//! two reads, index-driven random I/O, and insert-driven growth of the
//! order tables over the run. One *scaled warehouse* stands in for 100
//! paper warehouses, so the 1K/2K/4K-warehouse databases (100/200/400 GB)
//! become 10/20/40 scaled warehouses at 1/[`crate::SCALE`] the bytes.
//!
//! The metric is tpmC: NewOrder transactions committed per minute.

use std::sync::Arc;

use turbopool_engine::{bulk_load_heap, bulk_load_index, Database, HeapId, IndexId};
use turbopool_iosim::rng::Rng;
use turbopool_iosim::rng::SmallRng;
use turbopool_iosim::{Clk, Time, MILLISECOND};

use crate::driver::{Client, StepResult, ThroughputRecorder};
use crate::rand_util::{client_rng, nurand};
use crate::scenario::{build_db, Design, SystemSpec, SCALE};

/// Items in the (global) item table.
pub const ITEMS: u64 = 10_000;
/// Districts per scaled warehouse.
pub const DISTRICTS: u64 = 10;
/// Customers per district.
pub const CUST_PER_DIST: u64 = 600;
/// Stock rows per scaled warehouse (one per item).
pub const STOCK_PER_W: u64 = ITEMS;
/// Preloaded (historical) orders per district.
pub const PRELOAD_ORDERS: u64 = 200;
/// Average order lines per order.
pub const AVG_OL: u64 = 10;

const REC_ITEM: usize = 64;
const REC_STOCK: usize = 256;
const REC_CUSTOMER: usize = 192;
const REC_DISTRICT: usize = 64;
const REC_WAREHOUSE: usize = 64;
const REC_ORDER: usize = 48;
const REC_ORDER_LINE: usize = 48;
const REC_HISTORY: usize = 48;
const REC_NEW_ORDER: usize = 16;

/// Default headroom multiplier for tables that grow during the run
/// (sized for the paper's 10-hour runs; tests with tiny, fully-cached
/// databases can pass a larger multiplier via [`Tpcc::setup_opt`]).
const GROWTH: u64 = 3;

/// CPU cost charged per transaction, already time-scaled: ~2.4 core-ms of
/// 2009-Xeon work per NewOrder (the paper's box tops out near 3,300 TPC-C
/// transactions/s on CPU alone).
const CPU_NEW_ORDER: Time = (2.4 * SCALE) as Time * MILLISECOND / 1000 * 1000;
const CPU_LIGHT: Time = SCALE as Time * MILLISECOND / 1000 * 1000;

fn pages_for(rows: u64, rec: usize, page_size: usize) -> u64 {
    let slots = (page_size / (1 + rec)) as u64;
    rows.div_ceil(slots)
}

fn index_extent(keys: u64, page_size: usize) -> u64 {
    let cap = ((page_size - 16) / 16) as f64 * 0.7;
    ((keys as f64 / cap * 1.6) as u64).max(8) + 8
}

/// Key encodings (one global heap+index per table, composite keys).
pub fn stock_key(w: u64, i: u64) -> u64 {
    w * ITEMS + i
}
pub fn cust_key(w: u64, d: u64, c: u64) -> u64 {
    (w * DISTRICTS + d) * CUST_PER_DIST + c
}
fn district_no(w: u64, d: u64) -> u64 {
    w * DISTRICTS + d
}
pub fn order_key(w: u64, d: u64, o: u64) -> u64 {
    (district_no(w, d) << 40) | o
}
pub fn ol_key(w: u64, d: u64, o: u64, l: u64) -> u64 {
    (district_no(w, d) << 40) | (o << 8) | l
}

/// Table handles plus sizing for one TPC-C database.
pub struct Tpcc {
    pub db: Arc<Database>,
    pub warehouses: u64,
    h_item: HeapId,
    h_stock: HeapId,
    h_customer: HeapId,
    h_district: HeapId,
    h_warehouse: HeapId,
    h_orders: HeapId,
    h_order_line: HeapId,
    h_history: HeapId,
    h_new_order: HeapId,
    i_stock: IndexId,
    i_customer: IndexId,
    i_orders: IndexId,
    i_order_line: IndexId,
    i_last_order: IndexId,
    seed: u64,
}

impl Tpcc {
    /// Database pages needed for `sw` scaled warehouses (data + indexes +
    /// growth headroom).
    pub fn db_pages(sw: u64, page_size: usize) -> u64 {
        Self::db_pages_opt(sw, page_size, GROWTH)
    }

    /// Like [`Tpcc::db_pages`] with an explicit growth multiplier.
    pub fn db_pages_opt(sw: u64, page_size: usize, growth: u64) -> u64 {
        let p = |rows, rec| pages_for(rows, rec, page_size);
        let growth = growth.max(1);
        let preload_orders = sw * DISTRICTS * PRELOAD_ORDERS;
        let data = p(ITEMS, REC_ITEM)
            + p(sw * STOCK_PER_W, REC_STOCK)
            + p(sw * DISTRICTS * CUST_PER_DIST, REC_CUSTOMER)
            + p(sw * DISTRICTS, REC_DISTRICT)
            + p(sw, REC_WAREHOUSE)
            + p(preload_orders * growth, REC_ORDER)
            + p(preload_orders * AVG_OL * growth, REC_ORDER_LINE)
            + p(preload_orders * growth, REC_HISTORY)
            + p(preload_orders * growth, REC_NEW_ORDER);
        let idx = index_extent(sw * STOCK_PER_W, page_size)
            + index_extent(sw * DISTRICTS * CUST_PER_DIST, page_size) * 2
            + index_extent(preload_orders * growth, page_size)
            + index_extent(preload_orders * AVG_OL * growth, page_size)
            + 5; // index roots
        data + idx + 64
    }

    /// Build and bulk-load (backup-restore style) a TPC-C database of `sw`
    /// scaled warehouses under the given design.
    pub fn setup(design: Design, sw: u64, lambda: f64) -> Tpcc {
        Self::setup_opt(design, sw, lambda, GROWTH)
    }

    /// Like [`Tpcc::setup`] with an explicit growth multiplier for the
    /// order tables (long runs on tiny, fully-cached databases need more
    /// headroom than the paper-proportioned default).
    pub fn setup_opt(design: Design, sw: u64, lambda: f64, growth: u64) -> Tpcc {
        Self::setup_opt_tweak(design, sw, lambda, growth, |_| {})
    }

    /// Like [`Tpcc::setup`] with a hook that edits the [`SystemSpec`]
    /// before the database opens (replacement/admission policy overrides
    /// for the policy-arena bench, alternative τ/μ, …).
    pub fn setup_tweak(
        design: Design,
        sw: u64,
        lambda: f64,
        tweak: impl FnOnce(&mut SystemSpec),
    ) -> Tpcc {
        Self::setup_opt_tweak(design, sw, lambda, GROWTH, tweak)
    }

    /// [`Tpcc::setup_tweak`] with an explicit growth-headroom factor.
    pub fn setup_opt_tweak(
        design: Design,
        sw: u64,
        lambda: f64,
        growth: u64,
        tweak: impl FnOnce(&mut SystemSpec),
    ) -> Tpcc {
        let growth = growth.max(1);
        let page_size = crate::scenario::PAGE_SIZE;
        let mut spec = SystemSpec::paper(design, Self::db_pages_opt(sw, page_size, growth));
        spec.lambda = lambda;
        tweak(&mut spec);
        let db = build_db(&spec);
        let mut clk = Clk::new();
        let p = |rows, rec| pages_for(rows, rec, page_size);
        let preload_orders = sw * DISTRICTS * PRELOAD_ORDERS;

        let h_item = db.create_heap(&mut clk, "item", REC_ITEM, p(ITEMS, REC_ITEM));
        let h_stock = db.create_heap(&mut clk, "stock", REC_STOCK, p(sw * STOCK_PER_W, REC_STOCK));
        let h_customer = db.create_heap(
            &mut clk,
            "customer",
            REC_CUSTOMER,
            p(sw * DISTRICTS * CUST_PER_DIST, REC_CUSTOMER),
        );
        let h_district = db.create_heap(
            &mut clk,
            "district",
            REC_DISTRICT,
            p(sw * DISTRICTS, REC_DISTRICT),
        );
        let h_warehouse =
            db.create_heap(&mut clk, "warehouse", REC_WAREHOUSE, p(sw, REC_WAREHOUSE));
        let h_orders = db.create_heap(
            &mut clk,
            "orders",
            REC_ORDER,
            p(preload_orders * growth, REC_ORDER),
        );
        let h_order_line = db.create_heap(
            &mut clk,
            "order_line",
            REC_ORDER_LINE,
            p(preload_orders * AVG_OL * growth, REC_ORDER_LINE),
        );
        let h_history = db.create_heap(
            &mut clk,
            "history",
            REC_HISTORY,
            p(preload_orders * growth, REC_HISTORY),
        );
        let h_new_order = db.create_heap(
            &mut clk,
            "new_order",
            REC_NEW_ORDER,
            p(preload_orders * growth, REC_NEW_ORDER),
        );
        let i_stock = db.create_index(
            &mut clk,
            "stock_pk",
            index_extent(sw * STOCK_PER_W, page_size),
        );
        let i_customer = db.create_index(
            &mut clk,
            "customer_pk",
            index_extent(sw * DISTRICTS * CUST_PER_DIST, page_size),
        );
        let i_orders = db.create_index(
            &mut clk,
            "orders_pk",
            index_extent(preload_orders * growth, page_size),
        );
        let i_order_line = db.create_index(
            &mut clk,
            "order_line_pk",
            index_extent(preload_orders * AVG_OL * growth, page_size),
        );
        let i_last_order = db.create_index(
            &mut clk,
            "customer_last_order",
            index_extent(sw * DISTRICTS * CUST_PER_DIST, page_size),
        );

        // --- bulk load (restore-from-backup path; no simulated I/O) ---
        let u64rec = |len: usize, vals: &[(usize, u64)]| {
            let mut r = vec![0u8; len];
            for &(off, v) in vals {
                r[off..off + 8].copy_from_slice(&v.to_le_bytes());
            }
            r
        };
        bulk_load_heap(
            &db,
            h_item,
            (0..ITEMS).map(|i| u64rec(REC_ITEM, &[(0, 100 + i % 900)])),
        );
        bulk_load_heap(
            &db,
            h_stock,
            (0..sw * STOCK_PER_W).map(|_| u64rec(REC_STOCK, &[(0, 50)])),
        );
        bulk_load_heap(
            &db,
            h_customer,
            (0..sw * DISTRICTS * CUST_PER_DIST).map(|_| u64rec(REC_CUSTOMER, &[(0, 1000)])),
        );
        bulk_load_heap(
            &db,
            h_district,
            (0..sw * DISTRICTS)
                .map(|_| u64rec(REC_DISTRICT, &[(0, PRELOAD_ORDERS), (8, PRELOAD_ORDERS)])),
        );
        bulk_load_heap(
            &db,
            h_warehouse,
            (0..sw).map(|_| u64rec(REC_WAREHOUSE, &[])),
        );

        // Preloaded order history: PRELOAD_ORDERS per district, AVG_OL
        // lines each, delivered.
        let mut orders = Vec::new();
        let mut order_idx = Vec::new();
        let mut last_order = Vec::new();
        let mut lines = Vec::new();
        let mut line_idx = Vec::new();
        let mut rid: u64 = 0;
        let mut lrid: u64 = 0;
        for w in 0..sw {
            for d in 0..DISTRICTS {
                for o in 0..PRELOAD_ORDERS {
                    let c = (o * 7) % CUST_PER_DIST;
                    orders.push(u64rec(REC_ORDER, &[(0, o), (8, c), (16, AVG_OL), (24, 1)]));
                    order_idx.push((order_key(w, d, o), rid));
                    last_order.push((cust_key(w, d, c), rid));
                    for l in 0..AVG_OL {
                        let item = (o * 31 + l * 17) % ITEMS;
                        lines.push(u64rec(REC_ORDER_LINE, &[(0, item), (8, 5), (24, 1)]));
                        line_idx.push((ol_key(w, d, o, l), lrid));
                        lrid += 1;
                    }
                    rid += 1;
                }
            }
        }
        bulk_load_heap(&db, h_orders, orders);
        bulk_load_heap(&db, h_order_line, lines);
        bulk_load_index(&db, i_stock, (0..sw * STOCK_PER_W).map(|k| (k, k)), 0.7);
        bulk_load_index(
            &db,
            i_customer,
            (0..sw * DISTRICTS * CUST_PER_DIST).map(|k| (k, k)),
            0.7,
        );
        bulk_load_index(&db, i_orders, order_idx, 0.7);
        bulk_load_index(&db, i_order_line, line_idx, 0.7);
        // Keep only the latest order per customer (upsert order): sort and
        // dedup keeping the greatest rid per key.
        last_order.sort_unstable();
        last_order.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1 = b.1.max(a.1);
                true
            } else {
                false
            }
        });
        bulk_load_index(&db, i_last_order, last_order, 0.7);

        Tpcc {
            db,
            warehouses: sw,
            h_item,
            h_stock,
            h_customer,
            h_district,
            h_warehouse,
            h_orders,
            h_order_line,
            h_history,
            h_new_order,
            i_stock,
            i_customer,
            i_orders,
            i_order_line,
            i_last_order,
            seed: spec.seed,
        }
    }

    /// A terminal (transaction stream). NewOrder commits are recorded into
    /// `tpmc`.
    pub fn client(self: &Arc<Self>, client_no: u64, tpmc: Arc<ThroughputRecorder>) -> TpccClient {
        TpccClient {
            t: Arc::clone(self),
            rng: client_rng(self.seed, client_no),
            tpmc,
        }
    }
}

/// One TPC-C terminal.
pub struct TpccClient {
    t: Arc<Tpcc>,
    rng: SmallRng,
    tpmc: Arc<ThroughputRecorder>,
}

impl TpccClient {
    fn pick_customer(&mut self) -> u64 {
        nurand(&mut self.rng, 1023, 7, 0, CUST_PER_DIST - 1)
    }

    fn pick_item(&mut self) -> u64 {
        nurand(&mut self.rng, 8191, 11, 0, ITEMS - 1)
    }

    fn new_order(&mut self, clk: &mut Clk) {
        let t = Arc::clone(&self.t);
        let w = self.rng.gen_range(0..t.warehouses);
        let d = self.rng.gen_range(0..DISTRICTS);
        let c = self.pick_customer();
        let ol_cnt = self.rng.gen_range(5..=15u64);
        let items: Vec<(u64, u64)> = (0..ol_cnt)
            .map(|_| {
                let i = self.pick_item();
                // 1% of lines hit a remote warehouse's stock.
                let sw = if self.rng.gen_ratio(1, 100) && t.warehouses > 1 {
                    self.rng.gen_range(0..t.warehouses)
                } else {
                    w
                };
                (sw, i)
            })
            .collect();

        clk.elapse(CPU_NEW_ORDER);
        let mut txn = t.db.begin(clk);
        // District: take the next order id.
        let drid = district_no(w, d);
        let o_id = {
            let rec = txn.heap_get(t.h_district, drid).expect("district");
            u64::from_le_bytes(rec[0..8].try_into().unwrap())
        };
        {
            let mut rec = txn.heap_get(t.h_district, drid).unwrap();
            rec[0..8].copy_from_slice(&(o_id + 1).to_le_bytes());
            txn.heap_update(t.h_district, drid, &rec);
        }
        // Customer read (index + heap).
        let crid = txn
            .index_get(t.i_customer, cust_key(w, d, c))
            .expect("customer");
        txn.heap_get(t.h_customer, crid);

        // Lines: item read, stock read+update.
        for &(sw, i) in &items {
            txn.heap_get(t.h_item, i).expect("item");
            let srid = txn.index_get(t.i_stock, stock_key(sw, i)).expect("stock");
            let mut rec = txn.heap_get(t.h_stock, srid).expect("stock rec");
            let q = u64::from_le_bytes(rec[0..8].try_into().unwrap());
            let newq = if q > 10 { q - 1 } else { q + 91 };
            rec[0..8].copy_from_slice(&newq.to_le_bytes());
            let cnt = u64::from_le_bytes(rec[16..24].try_into().unwrap()) + 1;
            rec[16..24].copy_from_slice(&cnt.to_le_bytes());
            txn.heap_update(t.h_stock, srid, &rec);
        }

        // Order + lines + new-order inserts.
        let mut orec = vec![0u8; REC_ORDER];
        orec[0..8].copy_from_slice(&o_id.to_le_bytes());
        orec[8..16].copy_from_slice(&c.to_le_bytes());
        orec[16..24].copy_from_slice(&ol_cnt.to_le_bytes());
        let orid = txn.heap_insert(t.h_orders, &orec).expect("orders full");
        txn.index_insert(t.i_orders, order_key(w, d, o_id), orid);
        txn.index_insert(t.i_last_order, cust_key(w, d, c), orid);
        for (l, &(_, i)) in items.iter().enumerate() {
            let mut lrec = vec![0u8; REC_ORDER_LINE];
            lrec[0..8].copy_from_slice(&i.to_le_bytes());
            lrec[8..16].copy_from_slice(&5u64.to_le_bytes());
            let lr = txn.heap_insert(t.h_order_line, &lrec).expect("ol full");
            txn.index_insert(t.i_order_line, ol_key(w, d, o_id, l as u64), lr);
        }
        let mut nrec = vec![0u8; REC_NEW_ORDER];
        nrec[0..8].copy_from_slice(&o_id.to_le_bytes());
        txn.heap_insert(t.h_new_order, &nrec)
            .expect("new_order full");
        txn.commit();
        self.tpmc.record(clk.now);
    }

    fn payment(&mut self, clk: &mut Clk) {
        let t = Arc::clone(&self.t);
        let w = self.rng.gen_range(0..t.warehouses);
        let d = self.rng.gen_range(0..DISTRICTS);
        // 15% pay through a remote customer.
        let (cw, cd) = if self.rng.gen_ratio(15, 100) && t.warehouses > 1 {
            (
                self.rng.gen_range(0..t.warehouses),
                self.rng.gen_range(0..DISTRICTS),
            )
        } else {
            (w, d)
        };
        let c = self.pick_customer();
        let amount = self.rng.gen_range(1..=5000u64);

        clk.elapse(CPU_LIGHT);
        let mut txn = t.db.begin(clk);
        {
            let mut rec = txn.heap_get(t.h_warehouse, w).expect("warehouse");
            let ytd = u64::from_le_bytes(rec[0..8].try_into().unwrap());
            rec[0..8].copy_from_slice(&(ytd + amount).to_le_bytes());
            txn.heap_update(t.h_warehouse, w, &rec);
        }
        {
            let drid = district_no(w, d);
            let mut rec = txn.heap_get(t.h_district, drid).expect("district");
            let ytd = u64::from_le_bytes(rec[16..24].try_into().unwrap());
            rec[16..24].copy_from_slice(&(ytd + amount).to_le_bytes());
            txn.heap_update(t.h_district, drid, &rec);
        }
        let crid = txn
            .index_get(t.i_customer, cust_key(cw, cd, c))
            .expect("customer");
        {
            let mut rec = txn.heap_get(t.h_customer, crid).unwrap();
            let bal = u64::from_le_bytes(rec[0..8].try_into().unwrap());
            rec[0..8].copy_from_slice(&bal.wrapping_sub(amount).to_le_bytes());
            txn.heap_update(t.h_customer, crid, &rec);
        }
        let hrec = vec![1u8; REC_HISTORY];
        txn.heap_insert(t.h_history, &hrec).expect("history full");
        txn.commit();
    }

    fn order_status(&mut self, clk: &mut Clk) {
        let t = Arc::clone(&self.t);
        let w = self.rng.gen_range(0..t.warehouses);
        let d = self.rng.gen_range(0..DISTRICTS);
        let c = self.pick_customer();

        clk.elapse(CPU_LIGHT);
        let mut txn = t.db.begin(clk);
        let crid = txn
            .index_get(t.i_customer, cust_key(w, d, c))
            .expect("customer");
        txn.heap_get(t.h_customer, crid);
        if let Some(orid) = txn.index_get(t.i_last_order, cust_key(w, d, c)) {
            if let Some(orec) = txn.heap_get(t.h_orders, orid) {
                let o_id = u64::from_le_bytes(orec[0..8].try_into().unwrap());
                let lines = txn.index_range(
                    t.i_order_line,
                    ol_key(w, d, o_id, 0),
                    ol_key(w, d, o_id, 255),
                    16,
                );
                for (_, lrid) in lines {
                    txn.heap_get(t.h_order_line, lrid);
                }
            }
        }
        txn.commit();
    }

    fn delivery(&mut self, clk: &mut Clk) {
        let t = Arc::clone(&self.t);
        let w = self.rng.gen_range(0..t.warehouses);
        clk.elapse(CPU_NEW_ORDER);
        let mut txn = t.db.begin(clk);
        for d in 0..DISTRICTS {
            let drid = district_no(w, d);
            let mut rec = txn.heap_get(t.h_district, drid).expect("district");
            let next_o = u64::from_le_bytes(rec[0..8].try_into().unwrap());
            let next_del = u64::from_le_bytes(rec[8..16].try_into().unwrap());
            if next_del >= next_o {
                continue; // nothing undelivered in this district
            }
            rec[8..16].copy_from_slice(&(next_del + 1).to_le_bytes());
            txn.heap_update(t.h_district, drid, &rec);
            if let Some(orid) = txn.index_get(t.i_orders, order_key(w, d, next_del)) {
                if let Some(mut orec) = txn.heap_get(t.h_orders, orid) {
                    orec[24..32].copy_from_slice(&7u64.to_le_bytes()); // carrier
                    txn.heap_update(t.h_orders, orid, &orec);
                    let c = u64::from_le_bytes(orec[8..16].try_into().unwrap());
                    let lines = txn.index_range(
                        t.i_order_line,
                        ol_key(w, d, next_del, 0),
                        ol_key(w, d, next_del, 255),
                        16,
                    );
                    for (_, lrid) in lines {
                        if let Some(mut lrec) = txn.heap_get(t.h_order_line, lrid) {
                            lrec[24..32].copy_from_slice(&1u64.to_le_bytes());
                            txn.heap_update(t.h_order_line, lrid, &lrec);
                        }
                    }
                    // Credit the customer.
                    if let Some(crid) = txn.index_get(t.i_customer, cust_key(w, d, c)) {
                        if let Some(mut crec) = txn.heap_get(t.h_customer, crid) {
                            let bal = u64::from_le_bytes(crec[0..8].try_into().unwrap());
                            crec[0..8].copy_from_slice(&bal.wrapping_add(10).to_le_bytes());
                            txn.heap_update(t.h_customer, crid, &crec);
                        }
                    }
                }
            }
        }
        txn.commit();
    }

    fn stock_level(&mut self, clk: &mut Clk) {
        let t = Arc::clone(&self.t);
        let w = self.rng.gen_range(0..t.warehouses);
        let d = self.rng.gen_range(0..DISTRICTS);
        clk.elapse(CPU_LIGHT);
        let mut txn = t.db.begin(clk);
        let drid = district_no(w, d);
        let rec = txn.heap_get(t.h_district, drid).expect("district");
        let next_o = u64::from_le_bytes(rec[0..8].try_into().unwrap());
        let from = next_o.saturating_sub(20);
        let lines = txn.index_range(
            t.i_order_line,
            ol_key(w, d, from, 0),
            ol_key(w, d, next_o, 0),
            200,
        );
        let mut items: Vec<u64> = Vec::new();
        for (_, lrid) in lines {
            if let Some(lrec) = txn.heap_get(t.h_order_line, lrid) {
                items.push(u64::from_le_bytes(lrec[0..8].try_into().unwrap()));
            }
        }
        items.sort_unstable();
        items.dedup();
        for i in items {
            if let Some(srid) = txn.index_get(t.i_stock, stock_key(w, i)) {
                txn.heap_get(t.h_stock, srid);
            }
        }
        txn.commit();
    }
}

impl Client for TpccClient {
    fn step(&mut self, clk: &mut Clk) -> StepResult {
        let roll = self.rng.gen_range(0..100u32);
        match roll {
            0..=44 => self.new_order(clk),
            45..=87 => self.payment(clk),
            88..=91 => self.order_status(clk),
            92..=95 => self.delivery(clk),
            _ => self.stock_level(clk),
        }
        StepResult::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Driver;
    use turbopool_iosim::{MINUTE, SECOND};

    #[test]
    fn sizing_matches_paper_targets() {
        // 20 scaled warehouses should be about the 2K-warehouse database:
        // 200 GB / SCALE ≈ 26,000 scaled pages (within 20%).
        let pages = Tpcc::db_pages(20, crate::scenario::PAGE_SIZE);
        let target = crate::scenario::gb_to_pages(200.0);
        let ratio = pages as f64 / target as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "pages {pages} target {target}"
        );
    }

    #[test]
    fn short_run_commits_transactions_on_all_designs() {
        for design in [Design::NoSsd, Design::Lc] {
            let t = Arc::new(Tpcc::setup(design, 2, 0.5));
            let tpmc = ThroughputRecorder::new(MINUTE);
            let mut d = Driver::new();
            for c in 0..4 {
                d.add(0, Box::new(t.client(c, Arc::clone(&tpmc))));
            }
            d.run_until(20 * MINUTE);
            assert!(
                tpmc.total() > 10,
                "{}: only {} NewOrders",
                design.label(),
                tpmc.total()
            );
        }
    }

    #[test]
    fn committed_work_is_durable_across_crash() {
        let t = Arc::new(Tpcc::setup(Design::Lc, 1, 0.9));
        let h_district = t.h_district;
        {
            let tpmc = ThroughputRecorder::new(MINUTE);
            let mut client = t.client(0, tpmc);
            let mut clk = Clk::new();
            for _ in 0..50 {
                client.step(&mut clk);
            }
        }
        let t = Arc::try_unwrap(t).ok().expect("sole owner");
        let db = Arc::try_unwrap(t.db).ok().expect("sole db owner");
        let (db2, stats) = Database::recover(db.crash());
        assert!(stats.records_scanned > 0);
        let mut clk = Clk::new();
        let mut txn = db2.begin(&mut clk);
        // Some district advanced its order counter past the preload, and
        // the advance survived the crash.
        let advanced = (0..DISTRICTS).any(|d| {
            let rec = txn.heap_get(h_district, d).expect("district record");
            u64::from_le_bytes(rec[0..8].try_into().unwrap()) > PRELOAD_ORDERS
        });
        assert!(advanced);
        txn.commit();
    }

    #[test]
    fn run_grows_order_tables() {
        let t = Arc::new(Tpcc::setup(Design::Dw, 1, 0.5));
        let tpmc = ThroughputRecorder::new(MINUTE);
        let mut d = Driver::new();
        d.add(0, Box::new(t.client(0, Arc::clone(&tpmc))));
        d.run_until(30 * MINUTE);
        let inserted =
            t.db.heap_meta(t.h_orders)
                .next
                .load(std::sync::atomic::Ordering::Relaxed);
        assert!(inserted > PRELOAD_ORDERS * DISTRICTS, "orders {inserted}");
        let _ = SECOND;
    }
}
