//! `turbopool` — command-line driver for the reproduction.
//!
//! ```text
//! turbopool tpcc  [--design lc|dw|cw|tac|nossd] [--warehouses 20] [--hours 10] [--lambda 0.5]
//! turbopool tpce  [--design ...] [--customers 2000] [--hours 10]
//! turbopool tpch  [--design ...] [--sf 30] [--streams 4]
//! turbopool devices
//! ```
//!
//! Runs one experiment and prints the metric plus the cache counters.

use std::sync::Arc;

use turbopool::iosim::{Clk, HOUR, MINUTE, SECOND};
use turbopool::workload::driver::{CheckpointClient, CleanerClient, Driver, ThroughputRecorder};
use turbopool::workload::scenario::Design;
use turbopool::workload::{tpcc::Tpcc, tpce::Tpce, tpch};

struct Args(Vec<String>);

impl Args {
    fn flag(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.0.get(i + 1))
            .map(|s| s.as_str())
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.flag(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn design(&self) -> Design {
        match self.flag("--design").unwrap_or("lc") {
            "cw" => Design::Cw,
            "dw" => Design::Dw,
            "tac" => Design::Tac,
            "nossd" | "none" => Design::NoSsd,
            _ => Design::Lc,
        }
    }
}

fn print_counters(db: &turbopool::engine::Database) {
    let pool = db.pool_stats();
    println!("\n-- counters --");
    println!("pool hit rate        : {:.2}%", pool.hit_rate() * 100.0);
    if let Some(m) = db.ssd_metrics() {
        println!("ssd hit rate         : {:.2}%", m.hit_rate() * 100.0);
        println!("ssd hits / misses    : {} / {}", m.ssd_hits, m.ssd_misses);
        println!(
            "dirty-hit fraction   : {:.2}%",
            m.dirty_hit_fraction() * 100.0
        );
        println!("admissions           : {}", m.admissions);
        println!("invalidations        : {}", m.invalidations);
        println!("cleaned pages        : {}", m.cleaned_pages);
        println!("checkpoint-cleaned   : {}", m.checkpoint_cleaned);
    }
    let d = db.io().disk_stats();
    let s = db.io().ssd_stats();
    println!("disk ops (r/w)       : {} / {}", d.read_ops, d.write_ops);
    println!("ssd  ops (r/w)       : {} / {}", s.read_ops, s.write_ops);
}

fn run_tpcc(args: &Args) {
    let design = args.design();
    let warehouses: u64 = args.num("--warehouses", 20);
    let hours: u64 = args.num("--hours", 10);
    let lambda: f64 = args.num("--lambda", 0.5);
    println!(
        "TPC-C-lite: {warehouses} scaled warehouses, {} for {hours} virtual hours, lambda {lambda}",
        design.label()
    );

    let t = Arc::new(Tpcc::setup(design, warehouses, lambda));
    let tpmc = ThroughputRecorder::new(6 * MINUTE);
    let mut d = Driver::new();
    for c in 0..25 {
        d.add(0, Box::new(t.client(c, Arc::clone(&tpmc))));
    }
    if let Some(cleaner) = CleanerClient::for_db(&t.db) {
        d.add(0, Box::new(cleaner));
    }
    let dur = hours * HOUR;
    d.run_until(dur);
    println!(
        "tpmC (scaled, last hour): {:.2}   total NewOrders: {}",
        tpmc.rate_between(dur.saturating_sub(HOUR), dur, MINUTE),
        tpmc.total()
    );
    print_counters(&t.db);
}

fn run_tpce(args: &Args) {
    let design = args.design();
    let customers: u64 = args.num("--customers", 2_000);
    let hours: u64 = args.num("--hours", 10);
    println!(
        "TPC-E-lite: {customers} scaled customers, {} for {hours} virtual hours",
        design.label()
    );

    let t = Arc::new(Tpce::setup(design, customers, 0.01));
    let tpse = ThroughputRecorder::new(6 * MINUTE);
    let mut d = Driver::new();
    for c in 0..25 {
        d.add(0, Box::new(t.client(c, Arc::clone(&tpse))));
    }
    d.add(
        0,
        Box::new(CheckpointClient::new(Arc::clone(&t.db), 40 * MINUTE)),
    );
    if let Some(cleaner) = CleanerClient::for_db(&t.db) {
        d.add(0, Box::new(cleaner));
    }
    let dur = hours * HOUR;
    d.run_until(dur);
    println!(
        "tpsE (scaled, last hour): {:.4}   total TradeResults: {}",
        tpse.rate_between(dur.saturating_sub(HOUR), dur, SECOND),
        tpse.total()
    );
    print_counters(&t.db);
}

fn run_tpch(args: &Args) {
    let design = args.design();
    let sf: u64 = args.num("--sf", 30);
    let streams: usize = args.num("--streams", 4);
    println!(
        "TPC-H-lite: SF {sf}, {} ({streams} throughput streams)",
        design.label()
    );

    tpch::reset_finish_time();
    let t = Arc::new(tpch::Tpch::setup(design, sf, 0.01));
    let mut clk = Clk::new();
    let p = t.power_test(&mut clk);
    println!("\n-- power test --");
    for (name, dur) in &p.timings {
        println!("{name:>4}: {:8.1}s", *dur as f64 / SECOND as f64);
    }
    tpch::reset_finish_time();
    let tput = t.throughput_test(streams);
    println!("\nPower@{sf}SF      : {:.0}", p.power);
    println!("Throughput@{sf}SF : {tput:.0}");
    println!("QphH@{sf}SF       : {:.0}", tpch::qphh(p.power, tput));
    print_counters(&t.db);
}

fn devices() {
    use turbopool::iosim::{hdd_array_profile, log_disk_profile, ssd_profile};
    println!("Device calibration (paper Table 1):");
    for (name, p) in [
        ("8-HDD striped group (aggregate)", hdd_array_profile()),
        ("SLC SSD", ssd_profile()),
        ("log disk", log_disk_profile()),
    ] {
        println!(
            "  {name}: rand read {:.0} / seq read {:.0} / rand write {:.0} / seq write {:.0} IOPS",
            1e9 / p.rand_read_ns as f64,
            1e9 / p.seq_read_ns as f64,
            1e9 / p.rand_write_ns as f64,
            1e9 / p.seq_write_ns as f64,
        );
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = argv.first().cloned().unwrap_or_default();
    let args = Args(argv);
    match cmd.as_str() {
        "tpcc" => run_tpcc(&args),
        "tpce" => run_tpce(&args),
        "tpch" => run_tpch(&args),
        "devices" => devices(),
        _ => {
            eprintln!("usage: turbopool <tpcc|tpce|tpch|devices> [options]");
            eprintln!("  tpcc  --design lc|dw|cw|tac|nossd --warehouses N --hours H --lambda F");
            eprintln!("  tpce  --design ... --customers N --hours H");
            eprintln!("  tpch  --design ... --sf N --streams S");
            std::process::exit(2);
        }
    }
}
