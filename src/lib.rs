//! # turbopool
//!
//! A from-scratch Rust reproduction of *"Turbocharging DBMS Buffer Pool Using
//! SSDs"* (Do, DeWitt, Zhang, Naughton, Patel, Halverson — SIGMOD 2011): an
//! SSD-resident second-level buffer pool for a page-based storage engine,
//! with the paper's three designs — clean-write (CW), dual-write (DW) and
//! lazy-cleaning (LC) — plus the TAC (Temperature-Aware Caching) comparison
//! baseline, all evaluated on a virtual-time I/O subsystem calibrated to the
//! paper's testbed.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! * [`iosim`] — calibrated device models, virtual clock, backing stores.
//! * [`wal`] — redo-only write-ahead log, sharp checkpoints, recovery.
//! * [`bufpool`] — the main-memory buffer pool (LRU-2) and read-ahead.
//! * [`core`] — the SSD manager: CW/DW/LC designs, TAC, admission and
//!   replacement policies, and the §3.3 optimizations.
//! * [`engine`] — a mini storage engine (heap files, B+-trees, transactions)
//!   wired on top of the two buffer pools.
//! * [`workload`] — TPC-C/E/H-like workload generators and the
//!   discrete-event driver used by the benchmark harnesses.
//!
//! ## Quickstart
//!
//! ```
//! use turbopool::engine::{Database, DbConfig};
//! use turbopool::core::{SsdConfig, SsdDesign};
//! use turbopool::iosim::Clk;
//!
//! // A small database with a lazy-cleaning SSD cache between the buffer
//! // pool and the disks.
//! let mut cfg = DbConfig::small_for_tests();
//! cfg.ssd = Some(SsdConfig::new(SsdDesign::LazyCleaning, 64));
//! let db = Database::open(cfg);
//! let mut clk = Clk::new();
//!
//! let heap = db.create_heap(&mut clk, "orders", 64, 32);
//! let rid = {
//!     let mut txn = db.begin(&mut clk);
//!     let rid = txn.heap_insert(heap, b"hello world").unwrap();
//!     txn.commit();
//!     rid
//! };
//! let mut txn = db.begin(&mut clk);
//! assert_eq!(&txn.heap_get(heap, rid).unwrap()[..11], b"hello world");
//! txn.commit();
//! ```

#![forbid(unsafe_code)]

pub use turbopool_bufpool as bufpool;
pub use turbopool_core as core;
pub use turbopool_engine as engine;
pub use turbopool_iosim as iosim;
pub use turbopool_wal as wal;
pub use turbopool_workload as workload;
