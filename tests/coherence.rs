//! The Figure 3 invariant, checked live against a running system.
//!
//! After every batch of transactions we sample pages and compare the
//! physical bytes of the three possible copies (buffer pool, SSD frame,
//! disk). Exactly the six relationships of Figure 3 may occur; under the
//! write-through designs (CW, DW, TAC) the SSD copy must additionally
//! equal the disk copy (cases 4 and 6 are LC-only).

use turbopool::core::{SsdConfig, SsdDesign};
use turbopool::engine::{Database, DbConfig};
use turbopool::iosim::rng::SmallRng;
use turbopool::iosim::rng::{Rng, SeedableRng};
use turbopool::iosim::{Clk, PageId};

fn build(design: SsdDesign) -> Database {
    let mut cfg = DbConfig::small_for_tests();
    cfg.db_pages = 1024;
    cfg.mem_frames = 16;
    let mut s = SsdConfig::new(design, 64);
    s.partitions = 2;
    s.lambda = 0.6;
    cfg.ssd = Some(s);
    Database::open(cfg)
}

/// Read the three copies of `pid` (memory / SSD / disk) as byte vectors.
fn copies(db: &Database, pid: PageId) -> (Option<Vec<u8>>, Option<Vec<u8>>, Vec<u8>) {
    let ps = db.page_size();
    let mut disk = vec![0u8; ps];
    db.io().disk_store().read(pid, &mut disk);

    let ssd = match (db.ssd_manager(), db.tac_cache()) {
        (Some(m), _) => m.frame_of(pid),
        (_, Some(t)) => t.frame_of_valid(pid),
        _ => None,
    }
    .map(|frame| {
        let mut buf = vec![0u8; ps];
        db.io().ssd_store().read(PageId(frame), &mut buf);
        buf
    });

    // Peek the buffer pool without perturbing it: `contains` then a read
    // through a guard would touch LRU state; for an invariant check that
    // is acceptable (it is a real page access).
    let mem = if db.pool().contains(pid) {
        let mut clk = Clk::new();
        let g = db
            .pool()
            .get(&mut clk, pid, turbopool::iosim::Locality::Random)
            .unwrap();
        Some(g.read(|b| b.to_vec()))
    } else {
        None
    };
    (mem, ssd, disk)
}

fn check_invariant(db: &Database, design: SsdDesign, pid: PageId) {
    let (mem, ssd, disk) = copies(db, pid);
    if let (Some(m), Some(s)) = (&mem, &ssd) {
        assert_eq!(
            m, s,
            "{design:?}: memory and SSD copies of {pid} differ — the SSD \
             copy should have been invalidated when the page was dirtied"
        );
    }
    if let Some(s) = &ssd {
        let newer_than_disk = s != &disk;
        if newer_than_disk {
            assert_eq!(
                design,
                SsdDesign::LazyCleaning,
                "{design:?}: SSD copy of {pid} is newer than disk, but only \
                 LC is a write-back design"
            );
            // Under LC a newer SSD copy must be tracked as dirty.
            assert!(
                db.ssd_manager().unwrap().is_dirty(pid),
                "LC: untracked newer-than-disk SSD copy of {pid}"
            );
        }
    }
    // Note: mem newer than disk is always legal (cases 2 and 6).
}

fn run_and_check(design: SsdDesign) {
    let db = build(design);
    let mut clk = Clk::new();
    let h = db.create_heap(&mut clk, "data", 64, 384);
    let idx = db.create_index(&mut clk, "pk", 256);
    let meta_first = db.heap_meta(h).first;
    let mut rng = SmallRng::seed_from_u64(design as u64 + 1);
    let mut rids: Vec<u64> = Vec::new();

    for batch in 0..40 {
        for _ in 0..25 {
            let mut txn = db.begin(&mut clk);
            if rids.is_empty() || rng.gen_bool(0.5) {
                let mut rec = [0u8; 64];
                rec[0] = rng.gen();
                if let Ok(rid) = txn.heap_insert(h, &rec) {
                    txn.index_insert(idx, rid * 2 + 1, rid);
                    rids.push(rid);
                }
            } else {
                let rid = rids[rng.gen_range(0..rids.len())];
                if let Some(mut rec) = txn.heap_get(h, rid) {
                    rec[1] = rec[1].wrapping_add(1);
                    txn.heap_update(h, rid, &rec);
                }
            }
            txn.commit();
        }
        // Sample heap pages and check the three-copy invariant.
        let used = db.heap_meta(h).used_pages();
        for _ in 0..10 {
            let pid = meta_first.offset(rng.gen_range(0..used.max(1)));
            check_invariant(&db, design, pid);
        }
        if batch % 13 == 12 {
            db.checkpoint(&mut clk);
            // Immediately after a sharp checkpoint nothing may be dirty.
            assert_eq!(db.pool().dirty_count(), 0);
            if let Some(m) = db.ssd_manager() {
                assert_eq!(m.dirty_count(), 0, "checkpoint left dirty SSD pages");
            }
        }
    }
}

#[test]
fn clean_write_keeps_figure3_invariant() {
    run_and_check(SsdDesign::CleanWrite);
}

#[test]
fn dual_write_keeps_figure3_invariant() {
    run_and_check(SsdDesign::DualWrite);
}

#[test]
fn lazy_cleaning_keeps_figure3_invariant() {
    run_and_check(SsdDesign::LazyCleaning);
}

#[test]
fn tac_keeps_figure3_invariant() {
    run_and_check(SsdDesign::Tac);
}
