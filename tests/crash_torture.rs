//! Property-based crash torture: random operations with random crash
//! points, verified against an in-memory model.
//!
//! The model mirrors only *committed* state; after every simulated crash
//! and recovery the real database must agree with it exactly — across all
//! SSD designs and with checkpoints sprinkled in.

use std::collections::{BTreeMap, BTreeSet};

use std::sync::Arc;

use turbopool::core::{SsdConfig, SsdDesign};
use turbopool::engine::{Database, DbConfig, RecoveryReport};
use turbopool::iosim::fault::{FaultConfig, FaultPlan};
use turbopool::iosim::rng::{Rng, SeedableRng, SmallRng};
use turbopool::iosim::{Clk, CrashSwitch, MILLISECOND, SECOND};
use turbopool::wal::LogTail;

#[derive(Debug, Clone)]
enum Op {
    Insert(u8),
    Update {
        target: u16,
        val: u8,
    },
    Delete {
        target: u16,
    },
    AbortedInsert,
    Checkpoint,
    Crash,
    /// The SSD dies at the current virtual time (no-op for noSSD); the
    /// design must degrade without losing any committed state.
    SsdDeath,
    /// Attach low-probability transient read/write errors to both devices;
    /// the retry policies must absorb them invisibly.
    TransientIoError,
    /// The SSD browns out (5-50x slower service) from the current virtual
    /// time onward; hedged reads and admission skips must keep every
    /// committed record reachable and correct.
    Brownout,
    /// Crash, then lose power again during recovery's own redo writes
    /// (at boundary `inner`); re-entrant recovery must converge to the
    /// same committed state as an uninterrupted one.
    CrashDuringRecovery {
        inner: u8,
    },
    /// XOR `mask|1` into a pseudo-random durable WAL byte (at-rest media
    /// corruption), then crash. Recovery must come back to *some*
    /// committed prefix, report loudly when data was lost, and never
    /// surface bytes that were never committed.
    CorruptWal {
        byte: u32,
        mask: u8,
    },
}

/// Weighted op draw: the original 5:4:1:1:1:2 mix plus one slot each for
/// the three device-fault ops and the two restart-time-fault ops.
fn draw_op(rng: &mut SmallRng) -> Op {
    match rng.gen_range(0u32..19) {
        0..=4 => Op::Insert(rng.gen()),
        5..=8 => Op::Update {
            target: rng.gen(),
            val: rng.gen(),
        },
        9 => Op::Delete { target: rng.gen() },
        10 => Op::AbortedInsert,
        11 => Op::Checkpoint,
        12..=13 => Op::Crash,
        14 => Op::SsdDeath,
        15 => Op::TransientIoError,
        16 => Op::Brownout,
        17 => Op::CrashDuringRecovery {
            inner: rng.gen_range(0u8..8),
        },
        _ => Op::CorruptWal {
            byte: rng.gen(),
            mask: rng.gen(),
        },
    }
}

/// Reboot-loop recovery: keep re-entering `try_recover` until it completes
/// on a powered machine. Models a machine whose power fails during recovery
/// (the armed switch on the image's I/O stack) and then comes back.
fn recover_until_converged(mut image: turbopool::engine::CrashImage) -> (Database, RecoveryReport) {
    let mut attempts = 0;
    loop {
        attempts += 1;
        assert!(attempts <= 10, "recovery did not converge");
        match Database::try_recover(image) {
            Ok((db, report)) => {
                if db.io().power_lost() {
                    // Power died on recovery's final write; reboot again.
                    db.io().set_crash_switch(None);
                    image = db.crash();
                    continue;
                }
                db.io().set_crash_switch(None);
                return (db, report);
            }
            Err(e) => {
                image = e.image;
                image.io().set_crash_switch(None);
            }
        }
    }
}

const DESIGNS: [Option<SsdDesign>; 5] = [
    None,
    Some(SsdDesign::CleanWrite),
    Some(SsdDesign::DualWrite),
    Some(SsdDesign::LazyCleaning),
    Some(SsdDesign::Tac),
];

fn build(design: Option<SsdDesign>) -> Database {
    let mut cfg = DbConfig::small_for_tests();
    cfg.db_pages = 1024;
    cfg.mem_frames = 12;
    cfg.ssd = design.map(|d| {
        let mut s = SsdConfig::new(d, 48);
        s.partitions = 2;
        s.lambda = 0.7;
        s
    });
    Database::open(cfg)
}

fn verify(
    db: &Database,
    h: usize,
    idx: usize,
    model: &BTreeMap<u64, (u8, u8)>,
    unindexed: &BTreeSet<u64>,
) {
    let mut clk = Clk::new();
    let mut txn = db.begin(&mut clk);
    for (&rid, &(a, b)) in model {
        let rec = txn
            .heap_get(h, rid)
            .unwrap_or_else(|| panic!("rid {rid} lost"));
        assert_eq!((rec[0], rec[1]), (a, b), "rid {rid} content");
        // Mid-log corruption can strand a heap page on disk (eviction
        // write) while its transaction's index page rolled back with the
        // log — those rids are tracked in `unindexed` and only their heap
        // side is checked.
        if !unindexed.contains(&rid) {
            assert_eq!(txn.index_get(idx, rid * 2 + 1), Some(rid), "index of {rid}");
        }
    }
    txn.commit();
    // And nothing extra: scan count matches the model (holes excluded).
    let mut count = 0usize;
    db.scan_heap(&mut clk, h, |rid, _| {
        assert!(model.contains_key(&rid), "phantom rid {rid} after recovery");
        count += 1;
    })
    .unwrap();
    assert_eq!(count, model.len(), "record count mismatch");
}

#[test]
fn committed_state_survives_random_crashes() {
    // 25 seeded cases: every design five times, with fresh op sequences.
    for case in 0u64..25 {
        let design = DESIGNS[case as usize % DESIGNS.len()];
        let mut rng = SmallRng::seed_from_u64(0xC4A5_4 ^ case);
        let ops: Vec<Op> = (0..rng.gen_range(10usize..120))
            .map(|_| draw_op(&mut rng))
            .collect();
        let mut db = build(design);
        let mut clk = Clk::new();
        let h = db.create_heap(&mut clk, "data", 32, 384);
        let idx = db.create_index(&mut clk, "pk", 256);
        // Model: rid -> (byte0, byte1) of committed records.
        let mut model: BTreeMap<u64, (u8, u8)> = BTreeMap::new();
        // Every (byte0, byte1) pair each rid has *ever* held at a commit
        // point. After WAL corruption, recovery may legitimately roll a rid
        // back to any of these — but never to bytes outside the set.
        let mut history: BTreeMap<u64, BTreeSet<(u8, u8)>> = BTreeMap::new();
        // Rids whose index entry may have been lost to WAL corruption (heap
        // survived via an eviction write, index rolled back with the log).
        let mut unindexed: BTreeSet<u64> = BTreeSet::new();
        // Fault plans stay attached across crashes (the devices survive).
        let mut ssd_plan: Option<Arc<FaultPlan>> = None;
        let mut disk_plan: Option<Arc<FaultPlan>> = None;

        for op in ops {
            match op {
                Op::Insert(v) => {
                    let mut txn = db.begin(&mut clk);
                    let mut rec = [0u8; 32];
                    rec[0] = v;
                    if let Ok(rid) = txn.heap_insert(h, &rec) {
                        txn.index_insert(idx, rid * 2 + 1, rid);
                        txn.commit();
                        model.insert(rid, (v, 0));
                        history.entry(rid).or_default().insert((v, 0));
                        // A (possibly reused) rid gets a fresh index entry.
                        unindexed.remove(&rid);
                    }
                }
                Op::Update { target, val } => {
                    if model.is_empty() {
                        continue;
                    }
                    let keys: Vec<u64> = model.keys().copied().collect();
                    let rid = keys[target as usize % keys.len()];
                    let mut txn = db.begin(&mut clk);
                    let mut rec = txn.heap_get(h, rid).expect("model rid exists");
                    rec[1] = val;
                    txn.heap_update(h, rid, &rec);
                    txn.commit();
                    model.get_mut(&rid).unwrap().1 = val;
                    history.entry(rid).or_default().insert(model[&rid]);
                }
                Op::Delete { target } => {
                    if model.is_empty() {
                        continue;
                    }
                    let keys: Vec<u64> = model.keys().copied().collect();
                    let rid = keys[target as usize % keys.len()];
                    let mut txn = db.begin(&mut clk);
                    txn.heap_delete(h, rid);
                    txn.index_delete(idx, rid * 2 + 1);
                    txn.commit();
                    model.remove(&rid);
                    unindexed.remove(&rid);
                }
                Op::AbortedInsert => {
                    let mut txn = db.begin(&mut clk);
                    let _ = txn.heap_insert(h, &[0xFF; 32]);
                    txn.abort();
                }
                Op::Checkpoint => {
                    db.checkpoint(&mut clk);
                }
                Op::Crash => {
                    let (db2, _) = Database::recover(db.crash());
                    db = db2;
                    clk = Clk::new();
                    verify(&db, h, idx, &model, &unindexed);
                }
                Op::SsdDeath => {
                    let plan = ssd_plan.get_or_insert_with(|| {
                        let p = Arc::new(FaultPlan::new(FaultConfig::quiet(case)));
                        db.io().set_ssd_fault(Some(Arc::clone(&p)));
                        p
                    });
                    plan.kill(clk.now);
                }
                Op::Brownout => {
                    // A stall train starting now: 50ms slow windows every
                    // 200ms until the end of the (virtual) run. Only the
                    // first Brownout in a sequence installs a plan; later
                    // ones are no-ops, like repeated SsdDeath kills.
                    ssd_plan.get_or_insert_with(|| {
                        let p = Arc::new(FaultPlan::new(FaultConfig::brownout_train(
                            case,
                            clk.now,
                            clk.now + 10 * SECOND,
                            200 * MILLISECOND,
                            50 * MILLISECOND,
                            25,
                        )));
                        db.io().set_ssd_fault(Some(Arc::clone(&p)));
                        p
                    });
                }
                Op::CrashDuringRecovery { inner } => {
                    let image = db.crash();
                    // Arm a fresh switch over recovery's own durable
                    // writes: boundary `inner` is the last one to persist.
                    image
                        .io()
                        .set_crash_switch(Some(Arc::new(CrashSwitch::armed(inner as u64, false))));
                    let (db2, _) = recover_until_converged(image);
                    db = db2;
                    clk = Clk::new();
                    verify(&db, h, idx, &model, &unindexed);
                }
                Op::CorruptWal { byte, mask } => {
                    let len = db.log().durable_len();
                    if len == 0 {
                        continue;
                    }
                    // XOR a nonzero mask into a pseudo-random durable byte.
                    db.corrupt_log(byte as usize % len, mask | 1);
                    let (db2, report) = recover_until_converged(db.crash());
                    db = db2;
                    clk = Clk::new();
                    // Whatever survived must be *some* committed state:
                    // every present rid holds bytes it held at a commit
                    // point, and nothing outside the model's key space
                    // appears (insert rids are append-only, so a rolled-back
                    // heap is a subset of the model's rids).
                    let mut recovered: BTreeMap<u64, (u8, u8)> = BTreeMap::new();
                    db.scan_heap(&mut clk, h, |rid, rec| {
                        recovered.insert(rid, (rec[0], rec[1]));
                    })
                    .unwrap();
                    for (rid, pair) in &recovered {
                        assert!(
                            history.get(rid).is_some_and(|s| s.contains(pair)),
                            "case {case}: rid {rid} surfaced never-committed bytes {pair:?}"
                        );
                    }
                    // If the corruption cost us anything relative to the
                    // model, the report must say so loudly: either mid-log
                    // damage, or a shortened (truncated) tail.
                    if recovered != model {
                        assert!(
                            report.is_damaged() || matches!(report.log.tail, LogTail::Torn { .. }),
                            "case {case}: state rolled back silently: {report:?}"
                        );
                        // Adopt the survivor as the new baseline. Heap and
                        // index pages roll back independently (an eviction
                        // write can strand one side on disk past the damage
                        // point), so re-probe which rids still have their
                        // index entry and exempt the rest from index checks.
                        model = recovered;
                        unindexed.clear();
                        let mut txn = db.begin(&mut clk);
                        for &rid in model.keys() {
                            if txn.index_get(idx, rid * 2 + 1) != Some(rid) {
                                unindexed.insert(rid);
                            }
                        }
                        txn.commit();
                    }
                }
                Op::TransientIoError => {
                    // Low enough that the capped retry policy virtually
                    // never exhausts (final-failure odds ~p^6 per request).
                    disk_plan.get_or_insert_with(|| {
                        let p = Arc::new(FaultPlan::new(FaultConfig::transient(case, 0.02)));
                        db.io().set_disk_fault(Some(Arc::clone(&p)));
                        p
                    });
                    ssd_plan.get_or_insert_with(|| {
                        let p =
                            Arc::new(FaultPlan::new(FaultConfig::transient(case ^ 0xDEAD, 0.02)));
                        db.io().set_ssd_fault(Some(Arc::clone(&p)));
                        p
                    });
                }
            }
        }
        // Final crash + verification regardless of the op tail.
        let (db2, _) = Database::recover(db.crash());
        verify(&db2, h, idx, &model, &unindexed);
    }
}
