//! Property test: the B+-tree against a `BTreeMap` model.
//!
//! Random interleavings of insert/upsert/delete/get/range, executed both
//! against the paged B+-tree (through real transactions, with evictions
//! forced by a tiny pool and an SSD cache in the loop) and a standard
//! `BTreeMap`. Results must agree exactly, including range-scan order.

use std::collections::BTreeMap;

use turbopool::core::{SsdConfig, SsdDesign};
use turbopool::engine::{Database, DbConfig};
use turbopool::iosim::rng::{Rng, SeedableRng, SmallRng};
use turbopool::iosim::Clk;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u16),
    Delete(u16),
    Get(u16),
    Range(u16, u16),
    Commit,
    Abort,
}

/// Weighted op draw matching the old proptest strategy (6:2:3:2:1:1).
fn draw_op(rng: &mut SmallRng) -> Op {
    match rng.gen_range(0u32..15) {
        0..=5 => Op::Insert(rng.gen(), rng.gen()),
        6..=7 => Op::Delete(rng.gen()),
        8..=10 => Op::Get(rng.gen()),
        11..=12 => Op::Range(rng.gen(), rng.gen()),
        13 => Op::Commit,
        _ => Op::Abort,
    }
}

#[test]
fn btree_matches_btreemap() {
    for case in 0u64..32 {
        let mut rng = SmallRng::seed_from_u64(0xB7EE ^ case);
        let ops: Vec<Op> = (0..rng.gen_range(1usize..300))
            .map(|_| draw_op(&mut rng))
            .collect();
        let mut cfg = DbConfig::small_for_tests();
        cfg.db_pages = 4096;
        cfg.mem_frames = 8; // force splits + evictions through the cache
        cfg.ssd = Some(SsdConfig::new(SsdDesign::LazyCleaning, 64));
        let db = Database::open(cfg);
        let mut clk = Clk::new();
        let idx = db.create_index(&mut clk, "t", 3000);

        let mut committed: BTreeMap<u64, u64> = BTreeMap::new();
        let mut pending = committed.clone();
        let mut txn = db.begin(&mut clk);

        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    txn.index_insert(idx, k as u64, v as u64);
                    pending.insert(k as u64, v as u64);
                }
                Op::Delete(k) => {
                    let got = txn.index_delete(idx, k as u64);
                    let want = pending.remove(&(k as u64)).is_some();
                    assert_eq!(got, want, "delete {}", k);
                }
                Op::Get(k) => {
                    let got = txn.index_get(idx, k as u64);
                    assert_eq!(got, pending.get(&(k as u64)).copied(), "get {}", k);
                }
                Op::Range(a, b) => {
                    let (lo, hi) = (a.min(b) as u64, a.max(b) as u64);
                    let got = txn.index_range(idx, lo, hi, 10_000);
                    let want: Vec<(u64, u64)> =
                        pending.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                    assert_eq!(got, want, "range {}..={}", lo, hi);
                }
                Op::Commit => {
                    txn.commit();
                    committed = pending.clone();
                    txn = db.begin(&mut clk);
                }
                Op::Abort => {
                    txn.abort();
                    pending = committed.clone();
                    txn = db.begin(&mut clk);
                }
            }
        }
        txn.commit();
        let committed = pending;

        // Fresh transaction sees exactly the committed state.
        let mut txn = db.begin(&mut clk);
        let all = txn.index_range(idx, 0, u64::MAX, usize::MAX);
        let want: Vec<(u64, u64)> = committed.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(all, want);
        txn.commit();

        // And so does a recovered database after a crash.
        let (db2, _) = Database::recover(db.crash());
        let mut clk = Clk::new();
        let mut txn = db2.begin(&mut clk);
        let all = txn.index_range(idx, 0, u64::MAX, usize::MAX);
        let want: Vec<(u64, u64)> = committed.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(all, want, "post-recovery divergence");
        txn.commit();
    }
}
