//! Property test: the B+-tree against a `BTreeMap` model.
//!
//! Random interleavings of insert/upsert/delete/get/range, executed both
//! against the paged B+-tree (through real transactions, with evictions
//! forced by a tiny pool and an SSD cache in the loop) and a standard
//! `BTreeMap`. Results must agree exactly, including range-scan order.

use std::collections::BTreeMap;

use proptest::prelude::*;
use turbopool::core::{SsdConfig, SsdDesign};
use turbopool::engine::{Database, DbConfig};
use turbopool::iosim::Clk;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u16),
    Delete(u16),
    Get(u16),
    Range(u16, u16),
    Commit,
    Abort,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            6 => (any::<u16>(), any::<u16>()).prop_map(|(k, v)| Op::Insert(k, v)),
            2 => any::<u16>().prop_map(Op::Delete),
            3 => any::<u16>().prop_map(Op::Get),
            2 => (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::Range(a, b)),
            1 => Just(Op::Commit),
            1 => Just(Op::Abort),
        ],
        1..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn btree_matches_btreemap(ops in ops()) {
        let mut cfg = DbConfig::small_for_tests();
        cfg.db_pages = 4096;
        cfg.mem_frames = 8; // force splits + evictions through the cache
        cfg.ssd = Some(SsdConfig::new(SsdDesign::LazyCleaning, 64));
        let db = Database::open(cfg);
        let mut clk = Clk::new();
        let idx = db.create_index(&mut clk, "t", 3000);

        let mut committed: BTreeMap<u64, u64> = BTreeMap::new();
        let mut pending = committed.clone();
        let mut txn = db.begin(&mut clk);

        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    txn.index_insert(idx, k as u64, v as u64);
                    pending.insert(k as u64, v as u64);
                }
                Op::Delete(k) => {
                    let got = txn.index_delete(idx, k as u64);
                    let want = pending.remove(&(k as u64)).is_some();
                    prop_assert_eq!(got, want, "delete {}", k);
                }
                Op::Get(k) => {
                    let got = txn.index_get(idx, k as u64);
                    prop_assert_eq!(got, pending.get(&(k as u64)).copied(), "get {}", k);
                }
                Op::Range(a, b) => {
                    let (lo, hi) = (a.min(b) as u64, a.max(b) as u64);
                    let got = txn.index_range(idx, lo, hi, 10_000);
                    let want: Vec<(u64, u64)> =
                        pending.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                    prop_assert_eq!(got, want, "range {}..={}", lo, hi);
                }
                Op::Commit => {
                    txn.commit();
                    committed = pending.clone();
                    txn = db.begin(&mut clk);
                }
                Op::Abort => {
                    txn.abort();
                    pending = committed.clone();
                    txn = db.begin(&mut clk);
                }
            }
        }
        txn.commit();
        let committed = pending;

        // Fresh transaction sees exactly the committed state.
        let mut txn = db.begin(&mut clk);
        let all = txn.index_range(idx, 0, u64::MAX, usize::MAX);
        let want: Vec<(u64, u64)> = committed.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(all, want);
        txn.commit();

        // And so does a recovered database after a crash.
        let (db2, _) = Database::recover(db.crash());
        let mut clk = Clk::new();
        let mut txn = db2.begin(&mut clk);
        let all = txn.index_range(idx, 0, u64::MAX, usize::MAX);
        let want: Vec<(u64, u64)> = committed.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(all, want, "post-recovery divergence");
        txn.commit();
    }
}
