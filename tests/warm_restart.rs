//! The warm-restart extension (paper §6 future work).
//!
//! The SSD buffer table is embedded in every checkpoint record; after a
//! crash, entries are re-adopted iff the frame's in-page header still
//! names the page AND the page was not redone from the log (its disk
//! image did not advance). These tests check both the win (the cache is
//! warm) and the safety conditions (stale entries are rejected).

use std::sync::Arc;

use turbopool::core::{SsdConfig, SsdDesign};
use turbopool::engine::{Database, DbConfig};
use turbopool::iosim::{Clk, Locality, PageId};
use turbopool::wal::LogTail;

fn build(warm: bool) -> Database {
    let mut cfg = DbConfig::small_for_tests();
    cfg.db_pages = 2048;
    cfg.mem_frames = 16;
    let mut s = SsdConfig::new(SsdDesign::LazyCleaning, 256);
    s.partitions = 4;
    s.lambda = 0.5;
    s.warm_restart = warm;
    cfg.ssd = Some(s);
    Database::open(cfg)
}

/// Insert `n` records through transactions; returns (heap, rids).
fn load(db: &Database, clk: &mut Clk, n: u64) -> usize {
    let h = db.create_heap(clk, "t", 64, 1024);
    for i in 0..n {
        let mut txn = db.begin(clk);
        let mut rec = [0u8; 64];
        rec[..8].copy_from_slice(&i.to_le_bytes());
        txn.heap_insert(h, &rec).unwrap();
        txn.commit();
    }
    h
}

#[test]
fn warm_restart_readopts_checkpointed_pages() {
    let db = build(true);
    let mut clk = Clk::new();
    let h = load(&db, &mut clk, 3_000);
    // Touch everything so the SSD fills, then checkpoint (embeds table).
    let mut txn = db.begin(&mut clk);
    for i in (0..3_000u64).step_by(3) {
        txn.heap_get(h, i);
    }
    txn.commit();
    db.checkpoint(&mut clk);
    let before = db.ssd_manager().unwrap().occupancy();
    assert!(before > 50, "SSD should be populated: {before}");

    let (db2, _) = Database::recover(db.crash());
    let m = db2.ssd_metrics().unwrap();
    assert!(
        m.warm_imports > before / 2,
        "most pages should be re-adopted: {} of {before}",
        m.warm_imports
    );
    // Warm hits: reads served from the SSD with zero disk reads.
    let disk_reads_before = db2.io().disk_stats().read_ops;
    let mut clk = Clk::new();
    let mut hits = 0;
    let mgr = Arc::clone(db2.ssd_manager().unwrap());
    let meta = db2.heap_meta(h);
    for i in 0..meta.used_pages() {
        let pid = meta.first.offset(i);
        if mgr.contains(pid) {
            let g = db2.pool().get(&mut clk, pid, Locality::Random).unwrap();
            g.read(|_| ());
            hits += 1;
        }
    }
    assert!(hits > 0);
    assert_eq!(
        db2.io().disk_stats().read_ops,
        disk_reads_before,
        "warm SSD pages must not touch the disks"
    );
    // And the data is correct.
    let mut txn = db2.begin(&mut clk);
    for i in (0..3_000u64).step_by(117) {
        let rec = txn.heap_get(h, i).unwrap();
        assert_eq!(u64::from_le_bytes(rec[..8].try_into().unwrap()), i);
    }
    txn.commit();
}

#[test]
fn cold_restart_imports_nothing() {
    let db = build(false);
    let mut clk = Clk::new();
    let h = load(&db, &mut clk, 2_000);
    db.checkpoint(&mut clk);
    let (db2, _) = Database::recover(db.crash());
    assert_eq!(db2.ssd_manager().unwrap().occupancy(), 0);
    assert_eq!(db2.ssd_metrics().unwrap().warm_imports, 0);
    let _ = h;
}

#[test]
fn redone_pages_are_not_readopted() {
    let db = build(true);
    let mut clk = Clk::new();
    let h = load(&db, &mut clk, 3_000);
    db.checkpoint(&mut clk);
    // Post-checkpoint committed updates: their pages' SSD copies (from the
    // checkpoint table) are stale relative to the redone disk image.
    let meta = db.heap_meta(h);
    let mut updated_pids = Vec::new();
    for i in (0..300u64).step_by(7) {
        let mut txn = db.begin(&mut clk);
        let mut rec = txn.heap_get(h, i).unwrap();
        rec[8] = 0xAB;
        txn.heap_update(h, i, &rec);
        txn.commit();
        updated_pids.push(meta.locate(i).0);
    }
    let (db2, stats) = Database::recover(db.crash());
    assert!(stats.writes_applied > 0);
    let mgr = db2.ssd_manager().unwrap();
    for pid in updated_pids {
        assert!(
            !mgr.contains(pid),
            "redone page {pid} must not be warm-imported"
        );
    }
    // Correctness: the updates are visible.
    let mut clk = Clk::new();
    let mut txn = db2.begin(&mut clk);
    assert_eq!(txn.heap_get(h, 7).unwrap()[8], 0xAB);
    txn.commit();
}

#[test]
fn reused_frames_are_not_readopted() {
    // After the checkpoint, keep inserting so SSD frames get recycled for
    // new pages; the in-page tag then disagrees with the table entry.
    let db = build(true);
    let mut clk = Clk::new();
    let h = load(&db, &mut clk, 3_000);
    db.checkpoint(&mut clk);
    // Churn: enough new pages to recycle many SSD frames.
    let h2 = db.create_heap(&mut clk, "churn", 64, 512);
    for i in 0..6_000u64 {
        let mut txn = db.begin(&mut clk);
        let mut rec = [0u8; 64];
        rec[..8].copy_from_slice(&i.to_le_bytes());
        let _ = txn.heap_insert(h2, &rec);
        txn.commit();
    }
    let (db2, _) = Database::recover(db.crash());
    // Whatever was imported must read back correctly (tag check filtered
    // the recycled frames).
    let mgr = Arc::clone(db2.ssd_manager().unwrap());
    let meta = db2.heap_meta(h);
    let mut clk = Clk::new();
    let mut checked = 0;
    let mut txn = db2.begin(&mut clk);
    for i in (0..3_000u64).step_by(11) {
        let (pid, _) = meta.locate(i);
        if mgr.contains(pid) {
            let rec = txn.heap_get(h, i).unwrap();
            assert_eq!(
                u64::from_le_bytes(rec[..8].try_into().unwrap()),
                i,
                "imported frame served wrong content for rid {i}"
            );
            checked += 1;
        }
    }
    txn.commit();
    let _ = checked;
}

/// At-rest frame corruption (bit rot, torn writes from the previous
/// incarnation) must be caught by the import probe: the damaged frames are
/// rejected with `rejected_checksum` accounting, everything else is still
/// re-adopted, and reads of the affected pages fall back to the (current)
/// disk image.
#[test]
fn damaged_frames_are_rejected_not_readopted() {
    let db = build(true);
    let mut clk = Clk::new();
    let h = load(&db, &mut clk, 3_000);
    let mut txn = db.begin(&mut clk);
    for i in (0..3_000u64).step_by(3) {
        txn.heap_get(h, i);
    }
    txn.commit();
    db.checkpoint(&mut clk);
    assert!(db.ssd_manager().unwrap().occupancy() > 50);

    // Damage a dozen occupied frames at rest: rewrite the stored bytes
    // directly (bypassing the fault model), so the frame's intent checksum
    // no longer matches — exactly what a bit flip while powered off looks
    // like to the probe.
    let io = Arc::clone(db.io());
    let mut damaged_pids = Vec::new();
    let mut buf = vec![0u8; io.page_size()];
    for frame in 0..io.ssd_frames() {
        if damaged_pids.len() == 12 {
            break;
        }
        if let Some(pid) = io.ssd_tag(frame) {
            io.ssd_store().read(PageId(frame), &mut buf);
            buf[5] ^= 0x10;
            io.ssd_store().write(PageId(frame), &buf);
            damaged_pids.push(pid);
        }
    }
    assert_eq!(damaged_pids.len(), 12, "SSD should have occupied frames");

    let (db2, report) = Database::try_recover(db.crash()).expect("disk tier is healthy");
    let warm = report.warm.expect("warm import ran");
    assert_eq!(warm.rejected_checksum, 12, "every damaged frame rejected");
    assert!(!warm.aborted_dead, "isolated bit rot must not quarantine");
    assert!(warm.imported > 0, "undamaged frames still re-adopted");
    let m = db2.ssd_metrics().unwrap();
    assert_eq!(m.warm_rejected_checksum, 12);
    let mgr = db2.ssd_manager().unwrap();
    for &pid in &damaged_pids {
        assert!(!mgr.contains(pid), "damaged frame for {pid} re-adopted");
    }
    // The pages the damaged frames cached are intact on disk; reads must
    // serve correct bytes (from disk, not the rejected frames).
    let mut clk = Clk::new();
    let mut txn = db2.begin(&mut clk);
    for i in (0..3_000u64).step_by(97) {
        let rec = txn.heap_get(h, i).unwrap();
        assert_eq!(u64::from_le_bytes(rec[..8].try_into().unwrap()), i);
    }
    assert!(txn.poisoned().is_none());
    txn.commit();
}

/// Corruption inside the checkpoint's embedded `SsdTable` record kills the
/// record's checksum, so the scan stops before the checkpoint: recovery
/// reports mid-log damage, adopts no table, and restarts cold — but every
/// checkpointed page is on disk, so no committed data is lost.
#[test]
fn corrupt_ssd_table_record_degrades_to_cold_restart() {
    let db = build(true);
    let mut clk = Clk::new();
    let h = load(&db, &mut clk, 3_000);
    let mut txn = db.begin(&mut clk);
    for i in (0..3_000u64).step_by(3) {
        txn.heap_get(h, i);
    }
    txn.commit();
    db.checkpoint(&mut clk);
    assert!(db.ssd_manager().unwrap().occupancy() > 50);

    // After the sharp checkpoint the durable log is exactly
    // [SsdTable, Checkpoint]; a flip anywhere inside the table record
    // breaks its record checksum.
    let len = db.log().durable_len();
    assert!(len > 0);
    assert!(db.corrupt_log(len / 2, 0x04));

    let (db2, report) = Database::try_recover(db.crash()).expect("disk tier is healthy");
    assert!(
        matches!(report.log.tail, LogTail::Corrupt { .. }),
        "corruption must be reported loudly: {:?}",
        report.log.tail
    );
    assert!(report.is_damaged());
    assert!(!report.log.used_checkpoint, "damaged checkpoint adopted");
    assert!(
        report.warm.is_none(),
        "no table may be imported: {report:?}"
    );
    assert_eq!(db2.ssd_manager().unwrap().occupancy(), 0);
    assert_eq!(db2.ssd_metrics().unwrap().warm_imports, 0);
    // Cold but correct: the checkpoint flushed every page before its
    // record was written, so the disk image alone serves all commits.
    let mut clk = Clk::new();
    let mut txn = db2.begin(&mut clk);
    for i in (0..3_000u64).step_by(97) {
        let rec = txn.heap_get(h, i).unwrap();
        assert_eq!(u64::from_le_bytes(rec[..8].try_into().unwrap()), i);
    }
    assert!(txn.poisoned().is_none());
    txn.commit();
}
