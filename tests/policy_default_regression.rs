//! Regression gate for the policy-API redesign (ISSUE 8): the *default*
//! replacement policy (LRU-2) and the *default* SSD admission policy
//! (`DesignDefault`) must reproduce the pre-refactor numbers exactly —
//! same seeds ⇒ bit-identical pool/SSD counters, device totals, and page
//! images. The fingerprints below were captured on the tree immediately
//! before the `ReplacementPolicy` / `AdmissionPolicy` traits were
//! introduced; any drift in the default path shows up here as a direct
//! counter diff, not just a folded hash mismatch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use turbopool::bufpool::ShardCount;
use turbopool::core::{SsdConfig, SsdDesign};
use turbopool::engine::{Database, DbConfig, HeapId};
use turbopool::iosim::fault::checksum;
use turbopool::iosim::rng::{Rng, SeedableRng, SmallRng};
use turbopool::iosim::store::PageStore;
use turbopool::iosim::{Clk, PageId, MICROSECOND, MINUTE, SECOND};
use turbopool::workload::driver::{CleanerClient, Client, Driver, StepResult, ThroughputRecorder};
use turbopool::workload::scenario::Design;
use turbopool::workload::tpcc::Tpcc;

/// Fold a sequence of counters into one order-sensitive fingerprint.
fn fold(h: &mut u64, v: u64) {
    *h = h.rotate_left(7) ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
}

fn store_fp(store: &dyn PageStore) -> u64 {
    let mut buf = vec![0u8; store.page_size()];
    let mut h = 0u64;
    for pid in 0..store.num_pages() {
        store.read(PageId(pid), &mut buf);
        h = h.rotate_left(7) ^ checksum(&buf);
    }
    h
}

/// Every observable counter of one finished run, folded in a fixed order.
/// Only fields that existed *before* the policy refactor participate, so
/// newly added counters can never mask a default-path regression.
fn db_fingerprint(db: &Database, steps: u64) -> u64 {
    let mut h = 0u64;
    fold(&mut h, steps);
    let p = db.pool_stats();
    for v in [
        p.hits,
        p.misses,
        p.evictions_clean,
        p.evictions_dirty,
        p.prefetched_pages,
        p.expanded_fill_pages,
        p.checkpoint_writes,
    ] {
        fold(&mut h, v);
    }
    if let Some(m) = db.ssd_metrics() {
        for v in [
            m.ssd_hits,
            m.ssd_misses,
            m.throttled_reads,
            m.throttled_admissions,
            m.admissions,
            m.fill_admissions,
            m.policy_rejections,
            m.replacements,
            m.invalidations,
            m.cleaned_pages,
            m.cleaner_writes,
            m.inline_cleans,
            m.checkpoint_cleaned,
            m.tac_cancelled_writes,
            m.dirty_hits,
            m.warm_imports,
            m.warm_rejected_stale,
            m.warm_rejected_checksum,
            m.audit_violations,
            m.ssd_io_errors,
            m.checksum_misses,
            m.disk_retries,
            m.ssd_quarantined,
            m.quarantined_reads,
            m.lost_frames,
            m.stranded_dirty,
            m.salvaged_pages,
            m.hedged_reads,
            m.hedged_admissions,
            m.ssd_retries,
            m.cleaner_backoffs,
            m.cleaner_boosts,
        ] {
            fold(&mut h, v);
        }
    }
    for s in [db.io().disk_stats(), db.io().ssd_stats()] {
        for v in [s.read_ops, s.write_ops, s.read_pages, s.write_pages] {
            fold(&mut h, v);
        }
    }
    fold(&mut h, store_fp(db.io().disk_store()));
    fold(&mut h, store_fp(db.io().ssd_store()));
    h
}

/// Mixed point-access + scan client (inserts/updates/reads/scans), the
/// same access shape the determinism suite uses plus `scan_heap` so the
/// read-ahead/prefetch path participates in the fingerprint.
struct MixClient {
    db: Arc<Database>,
    heap: HeapId,
    rng: SmallRng,
    rids: Vec<u64>,
    remaining: usize,
    done_at: Arc<AtomicU64>,
}

impl Client for MixClient {
    fn step(&mut self, clk: &mut Clk) -> StepResult {
        if self.remaining == 0 {
            self.done_at.store(clk.now, Ordering::Relaxed);
            return StepResult::Done;
        }
        self.remaining -= 1;
        clk.elapse(10 * MICROSECOND);
        match self.rng.gen_range(0u32..8) {
            0 | 1 => {
                let mut txn = self.db.begin(clk);
                let mut rec = [0u8; 32];
                rec[0] = self.rng.gen();
                if let Ok(rid) = txn.heap_insert(self.heap, &rec) {
                    self.rids.push(rid);
                }
                assert!(txn.commit().is_committed());
            }
            2 | 3 if !self.rids.is_empty() => {
                let rid = self.rids[self.rng.gen_range(0..self.rids.len() as u64) as usize];
                let mut txn = self.db.begin(clk);
                if let Some(mut rec) = txn.heap_get(self.heap, rid) {
                    rec[1] = rec[1].wrapping_add(1);
                    txn.heap_update(self.heap, rid, &rec);
                }
                assert!(txn.commit().is_committed());
            }
            7 => {
                self.db.scan_heap(clk, self.heap, |_, _| {}).unwrap();
            }
            _ if !self.rids.is_empty() => {
                let rid = self.rids[self.rng.gen_range(0..self.rids.len() as u64) as usize];
                let mut txn = self.db.begin(clk);
                txn.heap_get(self.heap, rid);
                assert!(txn.commit().is_committed());
            }
            _ => {}
        }
        StepResult::Continue
    }
}

fn heap_mix_fingerprint(design: Option<SsdDesign>) -> u64 {
    heap_mix_fingerprint_sharded(design, None)
}

fn heap_mix_fingerprint_sharded(design: Option<SsdDesign>, shards: Option<usize>) -> u64 {
    let mut cfg = DbConfig::small_for_tests();
    cfg.db_pages = 1024;
    cfg.mem_frames = 8;
    cfg.fill_expansion = 4;
    if let Some(d) = design {
        let mut s = SsdConfig::new(d, 64);
        s.partitions = 2;
        cfg.ssd = Some(s);
    }
    if let Some(n) = shards {
        cfg.pool_shards = ShardCount::Fixed(n);
        cfg.tac_shards = ShardCount::Fixed(n);
    }
    let db = Arc::new(Database::open(cfg));
    let mut clk = Clk::new();
    let heap = db.create_heap(&mut clk, "data", 32, 256);
    let mut driver = Driver::new();
    let done_at = Arc::new(AtomicU64::new(0));
    for c in 0..3u64 {
        driver.add_in_domain(
            0,
            0,
            Box::new(MixClient {
                db: Arc::clone(&db),
                heap,
                rng: SmallRng::seed_from_u64(0x0EED_5EED ^ (c * 7919)),
                rids: Vec::new(),
                remaining: 120,
                done_at: Arc::clone(&done_at),
            }),
        );
    }
    if let Some(cleaner) = CleanerClient::for_db(&db) {
        driver.add_in_domain(0, 0, Box::new(cleaner));
    }
    driver.run_until(60 * SECOND);
    assert!(done_at.load(Ordering::Relaxed) > 0, "client did not finish");
    let mut clk = Clk::at(60 * SECOND);
    db.checkpoint(&mut clk);
    db_fingerprint(&db, driver.steps())
}

fn tpcc_fingerprint(design: Design) -> u64 {
    let t = Arc::new(Tpcc::setup(design, 1, 0.5));
    let metric = ThroughputRecorder::new(MINUTE);
    let mut driver = Driver::new();
    for c in 0..3u64 {
        driver.add_in_domain(0, 0, Box::new(t.client(c, Arc::clone(&metric))));
    }
    if let Some(cleaner) = CleanerClient::for_db(&t.db) {
        driver.add_in_domain(0, 0, Box::new(cleaner));
    }
    driver.run_until(10 * MINUTE);
    assert!(metric.total() > 0, "no NewOrder commits in 10 minutes");
    db_fingerprint(&t.db, driver.steps())
}

#[test]
fn default_policies_reproduce_pre_refactor_heap_mix() {
    let expected: [(Option<SsdDesign>, u64); 5] = [
        (None, 0xc9bf_b5c8_c574_1bc5),
        (Some(SsdDesign::CleanWrite), 0x1af1_ff9f_e31c_1342),
        (Some(SsdDesign::DualWrite), 0x2940_93d8_d4b2_cba2),
        (Some(SsdDesign::LazyCleaning), 0xf262_0138_3c5e_08c5),
        (Some(SsdDesign::Tac), 0x4443_8b83_73bf_0246),
    ];
    for (design, want) in expected {
        let got = heap_mix_fingerprint(design);
        assert_eq!(
            got, want,
            "default-policy heap-mix fingerprint drifted for {design:?} (got {got:#018x})"
        );
    }
}

/// ISSUE 9's sharding gate: an explicit single shard (`Fixed(1)`) on
/// both the pool page table and the TAC buffer table must reproduce the
/// pre-refactor fingerprints above bit-for-bit — the legacy single
/// latch is the `shards = 1` special case of the striped structure, not
/// a preserved separate code path.
#[test]
fn single_shard_reproduces_pre_refactor_fingerprints() {
    let expected: [(Option<SsdDesign>, u64); 3] = [
        (None, 0xc9bf_b5c8_c574_1bc5),
        (Some(SsdDesign::LazyCleaning), 0xf262_0138_3c5e_08c5),
        (Some(SsdDesign::Tac), 0x4443_8b83_73bf_0246),
    ];
    for (design, want) in expected {
        let got = heap_mix_fingerprint_sharded(design, Some(1));
        assert_eq!(
            got, want,
            "Fixed(1) sharding drifted from the legacy latch for {design:?} (got {got:#018x})"
        );
    }
}

#[test]
fn default_policies_reproduce_pre_refactor_tpcc() {
    let expected: [(Design, u64); 3] = [
        (Design::Dw, 0x1d3e_d4ce_d8bd_cd3c),
        (Design::Lc, 0x51e1_ead4_c0d3_abb2),
        (Design::Tac, 0xae64_5b18_974a_387d),
    ];
    for (design, want) in expected {
        let got = tpcc_fingerprint(design);
        assert_eq!(
            got, want,
            "default-policy TPC-C fingerprint drifted for {design:?} (got {got:#018x})"
        );
    }
}
