//! Property tests for the device timing model.
//!
//! Invariants of the capacity-ledger queueing model that every other
//! result in this repository rests on:
//!
//! 1. causality — no request completes before `now + service`;
//! 2. work conservation — total busy time equals the sum of service
//!    times, and a saturating open loop sustains exactly the calibrated
//!    rate;
//! 3. monotone interference — adding load never makes another stream
//!    faster.

use turbopool::iosim::rng::{Rng, SeedableRng, SmallRng};
use turbopool::iosim::{DeviceProfile, IoKind, Locality, SimDevice, SECOND};

fn profile() -> DeviceProfile {
    DeviceProfile::from_iops(1_000.0, 10_000.0, 800.0, 8_000.0)
}

#[test]
fn completion_respects_service_time() {
    for case in 0u64..32 {
        let mut rng = SmallRng::seed_from_u64(0xDE1_CE ^ case);
        let d = SimDevice::new("t", profile());
        for _ in 0..rng.gen_range(1usize..200) {
            let now = rng.gen_range(0u64..10 * SECOND);
            let lba = rng.gen_range(0u64..1000);
            let npages = rng.gen_range(1u64..5);
            let t = d.submit(now, IoKind::Read, lba, npages, None);
            let min_service = npages * profile().seq_read_ns; // cheapest possible
            assert!(
                t.complete >= now + min_service,
                "complete {} < now {} + min {}",
                t.complete,
                now,
                min_service
            );
            assert!(t.start >= now);
            assert!(t.complete > t.start);
        }
    }
}

#[test]
fn busy_time_equals_offered_work() {
    for case in 0u64..32 {
        let mut rng = SmallRng::seed_from_u64(0xB0_5E ^ case);
        let d = SimDevice::new("t", profile());
        let mut expect = 0u64;
        for _ in 0..rng.gen_range(1usize..300) {
            let now = rng.gen_range(0u64..SECOND);
            let lba = rng.gen_range(0u64..1000);
            d.submit(now, IoKind::Write, lba, 1, Some(Locality::Random));
            expect += profile().rand_write_ns;
        }
        let s = d.stats().snapshot();
        assert_eq!(s.write_busy_ns, expect);
    }
}

#[test]
fn closed_loop_rate_never_exceeds_calibration() {
    for case in 0u64..16 {
        let mut rng = SmallRng::seed_from_u64(0xC10_5ED ^ case);
        let n = rng.gen_range(100u64..2000);
        let d = SimDevice::new("t", profile());
        let mut now = 0;
        let mut x = rng.gen_range(0u64..1000);
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            now = d
                .submit(now, IoKind::Read, x % 100_000, 1, Some(Locality::Random))
                .complete;
        }
        let iops = n as f64 / (now as f64 / SECOND as f64);
        assert!(iops <= 1_000.5, "iops {iops} exceeds calibrated 1000");
        assert!(iops >= 990.0, "closed loop should saturate: {iops}");
    }
}

#[test]
fn added_load_only_slows_a_stream_down() {
    // Stream A alone vs stream A with a competing stream B.
    let solo = {
        let d = SimDevice::new("t", profile());
        let mut now = 0;
        for i in 0..500u64 {
            now = d
                .submit(now, IoKind::Read, i * 17 % 9999, 1, Some(Locality::Random))
                .complete;
        }
        now
    };
    let contended = {
        let d = SimDevice::new("t", profile());
        let mut a = 0;
        let mut b = 0;
        for i in 0..500u64 {
            a = d
                .submit(a, IoKind::Read, i * 17 % 9999, 1, Some(Locality::Random))
                .complete;
            b = d
                .submit(b, IoKind::Read, i * 31 % 9999, 1, Some(Locality::Random))
                .complete;
        }
        a
    };
    assert!(
        contended >= solo,
        "contention made the stream faster: solo {solo} contended {contended}"
    );
    // And roughly fair: two equal streams each get about half the device.
    assert!(
        contended as f64 >= 1.8 * solo as f64,
        "two streams should roughly halve each one's rate: solo {solo} contended {contended}"
    );
}

#[test]
fn sequential_detection_is_per_device_state() {
    let d = SimDevice::new("t", profile());
    // Interleave two "streams" on one device: adjacency breaks every time.
    let mut now = 0;
    let mut busy_interleaved = 0;
    for i in 0..50u64 {
        let t1 = d.submit(now, IoKind::Read, 1_000 + i, 1, None);
        let t2 = d.submit(t1.complete, IoKind::Read, 9_000 + i, 1, None);
        now = t2.complete;
        busy_interleaved = now;
    }
    let d2 = SimDevice::new("t", profile());
    let mut now2 = 0;
    for i in 0..50u64 {
        now2 = d2.submit(now2, IoKind::Read, 1_000 + i, 1, None).complete;
    }
    for i in 0..50u64 {
        now2 = d2.submit(now2, IoKind::Read, 9_000 + i, 1, None).complete;
    }
    assert!(
        busy_interleaved > 2 * now2,
        "interleaving must pay seeks: interleaved {busy_interleaved}, batched {now2}"
    );
}
