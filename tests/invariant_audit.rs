//! Property test for the invariant auditor (`strict-invariants` feature,
//! on by default): randomized operation sequences through every SSD
//! design must produce ZERO buffer-table state-machine violations.
//!
//! Two layers are exercised:
//! * the raw `PageIo` surface of `SsdManager` / `TacCache`, driven with
//!   random evict/read/dirty/run/checkpoint/clean sequences, and
//! * the full engine workload (heap + index transactions + checkpoints),
//!   whose `SsdMetricsSnapshot` must report `audit_violations == 0`.
//!
//! In debug builds the auditor also panics at the first illegal
//! transition, so these tests fail loudly, not just by count.

use std::sync::Arc;

use turbopool::bufpool::{AdmissionKind, PageIo, ReplacementKind};
use turbopool::core::tac::TacCache;
use turbopool::core::{SsdConfig, SsdDesign, SsdManager};
use turbopool::engine::{Database, DbConfig};
use turbopool::iosim::rng::{Rng, SeedableRng, SmallRng};
use turbopool::iosim::{Clk, DeviceSetup, IoManager, Locality, PageId};

const PAGE: usize = 512;
const PIDS: u64 = 4_000; // ~5x the 768-frame cache: heavy replacement

fn drive(io: &dyn PageIo, seed: u64, ops: usize) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut clk = Clk::new();
    let data = vec![7u8; PAGE];
    let mut buf = vec![0u8; PAGE];
    for _ in 0..ops {
        clk.now += 1_000; // keep async writes completing over time
        let pid = PageId(rng.gen_range(0..PIDS));
        let class = if rng.gen_ratio(1, 4) {
            Locality::Sequential
        } else {
            Locality::Random
        };
        match rng.gen_range(0u32..10) {
            // Evictions dominate: both clean and dirty. Contract: a page
            // being evicted dirty was dirtied in memory first, which the
            // pool reports via note_dirtied (invalidating any SSD copy).
            0..=3 => {
                let dirty = rng.gen_ratio(1, 2);
                if dirty {
                    io.note_dirtied(clk.now, pid);
                }
                io.evict_page(clk.now, pid, &data, dirty, class);
            }
            4..=6 => {
                io.read_page(&mut clk, pid, class, &mut buf).unwrap();
            }
            7 => {
                let first = PageId(rng.gen_range(0..PIDS - 16));
                let n = rng.gen_range(2u64..16);
                let _ = io.read_run(&mut clk, first, n);
            }
            8 => io.note_dirtied(clk.now, pid),
            _ => {
                // Checkpoint writes flush pages that are dirty in memory,
                // so the same contract applies.
                io.note_dirtied(clk.now, pid);
                let t = io.checkpoint_write(clk.now, pid, &data, class);
                clk.now = clk.now.max(t);
            }
        }
    }
    // Close out like a sharp checkpoint does.
    io.checkpoint_flush(&mut clk);
}

#[test]
fn randomized_ops_keep_auditor_clean_on_all_managers() {
    for design in [
        SsdDesign::CleanWrite,
        SsdDesign::DualWrite,
        SsdDesign::LazyCleaning,
    ] {
        let io = Arc::new(IoManager::new(&DeviceSetup::paper(PAGE, 1 << 16, 1 << 12)));
        let mut cfg = SsdConfig::new(design, 768);
        cfg.partitions = 4;
        let m = SsdManager::new(cfg, io);
        for seed in 0..4u64 {
            drive(&m, 0xA0D17 + seed, 3_000);
            if design == SsdDesign::LazyCleaning {
                // Interleave the lazy cleaner between batches.
                let mut clk = Clk::new();
                while m.clean_batch(&mut clk) > 0 {}
            }
        }
        assert_eq!(
            m.audit_violations(),
            0,
            "{design:?}: auditor recorded violations"
        );
        assert_eq!(m.metrics.snapshot().audit_violations, 0);
        // LC must end the run fully clean after checkpoint_flush.
        assert_eq!(m.dirty_count(), 0, "{design:?}: dirty pages left behind");
    }
}

#[test]
fn randomized_ops_keep_auditor_clean_on_tac() {
    let io = Arc::new(IoManager::new(&DeviceSetup::paper(PAGE, 1 << 16, 1 << 12)));
    let cfg = SsdConfig::new(SsdDesign::Tac, 768);
    let t = TacCache::new(cfg, io);
    for seed in 0..4u64 {
        drive(&t, 0x7AC + seed, 3_000);
    }
    assert_eq!(t.audit_violations(), 0, "TAC: auditor recorded violations");
    assert_eq!(t.metrics.snapshot().audit_violations, 0);
}

#[test]
fn engine_workload_reports_zero_audit_violations() {
    for design in [
        SsdDesign::CleanWrite,
        SsdDesign::DualWrite,
        SsdDesign::LazyCleaning,
        SsdDesign::Tac,
    ] {
        let mut cfg = DbConfig::small_for_tests();
        cfg.db_pages = 2048;
        cfg.mem_frames = 24;
        cfg.ssd = Some({
            let mut s = SsdConfig::new(design, 96);
            s.partitions = 4;
            s.lambda = 0.3;
            s
        });
        let db = Database::open(cfg);
        let mut clk = Clk::new();
        let h = db.create_heap(&mut clk, "t", 32, 256);
        let idx = db.create_index(&mut clk, "i", 700);
        let mut rng = SmallRng::seed_from_u64(99);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for i in 0..600usize {
            let mut txn = db.begin(&mut clk);
            match rng.gen_range(0u32..10) {
                0..=5 => {
                    let key = rng.gen_range(0..100_000u64) | (i as u64) << 20;
                    if let Ok(rid) = txn.heap_insert(h, &[3u8; 32]) {
                        txn.index_insert(idx, key, rid);
                        live.push((key, rid));
                    }
                }
                6..=8 if !live.is_empty() => {
                    let &(_, rid) = &live[rng.gen_range(0..live.len())];
                    let mut rec = txn.heap_get(h, rid).unwrap();
                    rec[0] = rec[0].wrapping_add(1);
                    txn.heap_update(h, rid, &rec);
                }
                _ => {
                    // Scans push run reads through the cache (the TAC
                    // stale-copy path regression lives here).
                    txn.commit();
                    db.scan_heap(&mut clk, h, |_, _| {}).unwrap();
                    continue;
                }
            }
            txn.commit();
            if i % 83 == 82 {
                db.checkpoint(&mut clk);
            }
        }
        let snap = db.ssd_metrics().expect("SSD configured");
        assert_eq!(
            snap.audit_violations, 0,
            "{design:?}: engine workload tripped the auditor"
        );
    }
}

#[test]
fn every_policy_combination_keeps_the_auditor_clean() {
    // The replacement/admission traits must uphold the same buffer-table
    // state machine the defaults do: run the engine workload under every
    // non-default replacement × admission pair on every design. Smaller
    // op count than the default-path test — the grid is 4×2×4 cells.
    let replacements = [
        ReplacementKind::Clock,
        ReplacementKind::Sieve,
        ReplacementKind::LruK { k: 3 },
        ReplacementKind::Ghost,
    ];
    let admissions = [AdmissionKind::AdmitAll, AdmissionKind::GhostHit];
    for &replacement in &replacements {
        for &admission in &admissions {
            for design in [
                SsdDesign::CleanWrite,
                SsdDesign::DualWrite,
                SsdDesign::LazyCleaning,
                SsdDesign::Tac,
            ] {
                let mut cfg = DbConfig::small_for_tests();
                cfg.db_pages = 2048;
                cfg.mem_frames = 24;
                cfg.replacement = replacement;
                cfg.ssd = Some({
                    let mut s = SsdConfig::new(design, 96);
                    s.partitions = 4;
                    s.lambda = 0.3;
                    s.admission = admission;
                    s
                });
                let db = Database::open(cfg);
                let mut clk = Clk::new();
                let h = db.create_heap(&mut clk, "t", 32, 256);
                let mut rng = SmallRng::seed_from_u64(0x90_11C7);
                let mut rids: Vec<u64> = Vec::new();
                for i in 0..250usize {
                    let mut txn = db.begin(&mut clk);
                    match rng.gen_range(0u32..10) {
                        0..=5 => {
                            if let Ok(rid) = txn.heap_insert(h, &[5u8; 32]) {
                                rids.push(rid);
                            }
                        }
                        6..=8 if !rids.is_empty() => {
                            let rid = rids[rng.gen_range(0..rids.len())];
                            let mut rec = txn.heap_get(h, rid).unwrap();
                            rec[0] = rec[0].wrapping_add(1);
                            txn.heap_update(h, rid, &rec);
                        }
                        _ => {
                            txn.commit();
                            db.scan_heap(&mut clk, h, |_, _| {}).unwrap();
                            continue;
                        }
                    }
                    txn.commit();
                    if i % 83 == 82 {
                        db.checkpoint(&mut clk);
                    }
                }
                let snap = db.ssd_metrics().expect("SSD configured");
                assert_eq!(
                    snap.audit_violations, 0,
                    "{design:?} {replacement:?} {admission:?}: auditor tripped"
                );
            }
        }
    }
}
