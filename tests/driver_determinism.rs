//! The parallel driver's acceptance gate (ISSUE 4): for every SSD design
//! and several seeds, `run_until_parallel` at 2/4/8 worker threads must
//! be **bit-identical** to the sequential driver — same client steps,
//! same final virtual times, same SSD-manager and buffer-pool counters,
//! same device totals, and byte-identical page images on both the disk
//! and SSD stores. One fault-injection scenario re-runs under the
//! parallel driver too, so fault replay keeps its same-seed guarantee.
//!
//! The parallel runs use a deliberately tiny lookahead so each run
//! crosses hundreds of window merges — exercising the deterministic
//! `(time, client_id, seq)` merge, not just a single big window.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use turbopool::bufpool::{AdmissionKind, ReplacementKind};
use turbopool::core::{SsdConfig, SsdDesign};
use turbopool::engine::{Database, DbConfig, HeapId};
use turbopool::iosim::fault::{checksum, FaultConfig, FaultPlan};
use turbopool::iosim::rng::{Rng, SeedableRng, SmallRng};
use turbopool::iosim::store::PageStore;
use turbopool::iosim::{Clk, PageId, MICROSECOND, SECOND};
use turbopool::workload::driver::{CleanerClient, Client, Driver, StepResult};

const DESIGNS: [SsdDesign; 4] = [
    SsdDesign::CleanWrite,
    SsdDesign::DualWrite,
    SsdDesign::LazyCleaning,
    SsdDesign::Tac,
];

const DOMAINS: usize = 2;
const CLIENTS_PER_DOMAIN: usize = 3;
const OPS_PER_CLIENT: usize = 80;

/// Virtual horizon. The LC cleaner pseudo-client never finishes, so runs
/// are bounded by virtual time rather than `run_to_completion`; the
/// horizon is generous enough that every `HeapClient` drains its op
/// budget first.
const END: u64 = 30 * SECOND;

/// A transaction-stream client over one domain's database: inserts,
/// updates and point reads driven by a per-client seeded RNG, finishing
/// after a fixed op budget and publishing its final virtual time.
struct HeapClient {
    db: Arc<Database>,
    heap: HeapId,
    rng: SmallRng,
    rids: Vec<u64>,
    remaining: usize,
    final_time: Arc<AtomicU64>,
}

impl Client for HeapClient {
    fn step(&mut self, clk: &mut Clk) -> StepResult {
        if self.remaining == 0 {
            self.final_time.store(clk.now, Ordering::Relaxed);
            return StepResult::Done;
        }
        self.remaining -= 1;
        clk.elapse(10 * MICROSECOND);
        let mut txn = self.db.begin(clk);
        let kind = self.rng.gen_range(0u32..4);
        if kind == 0 || self.rids.is_empty() {
            let v: u8 = self.rng.gen();
            let mut rec = [0u8; 32];
            rec[0] = v;
            if let Ok(rid) = txn.heap_insert(self.heap, &rec) {
                self.rids.push(rid);
            }
        } else {
            let rid = self.rids[self.rng.gen_range(0..self.rids.len() as u64) as usize];
            if kind == 1 {
                if let Some(mut rec) = txn.heap_get(self.heap, rid) {
                    rec[1] = rec[1].wrapping_add(1);
                    txn.heap_update(self.heap, rid, &rec);
                }
            } else {
                txn.heap_get(self.heap, rid);
            }
        }
        assert!(txn.commit().is_committed());
        StepResult::Continue
    }
}

/// What to inject into every domain's SSD, mirroring the fault matrix.
#[derive(Clone, Copy, PartialEq)]
enum Fault {
    None,
    Transient,
    /// A mid-run SSD stall train: the fail-slow detector must trip and
    /// clear, and hedged reads must divert to disk — identically at
    /// every thread count.
    Brownout,
}

/// One fully built scenario: a driver over `DOMAINS` share-nothing
/// databases, plus the handles needed to fingerprint the outcome.
struct Scenario {
    driver: Driver,
    dbs: Vec<Arc<Database>>,
    final_times: Vec<Arc<AtomicU64>>,
}

/// Buffer policies for one scenario; `DEFAULT_POLICY` is the paper's.
type Policy = (ReplacementKind, AdmissionKind);
const DEFAULT_POLICY: Policy = (ReplacementKind::Lru2, AdmissionKind::DesignDefault);

fn build(design: SsdDesign, seed: u64, fault: Fault) -> Scenario {
    build_policy(design, seed, fault, DEFAULT_POLICY)
}

fn build_policy(design: SsdDesign, seed: u64, fault: Fault, policy: Policy) -> Scenario {
    let mut dbs = Vec::new();
    let mut final_times = Vec::new();
    let mut driver = Driver::new();
    let mut min_service = u64::MAX;
    for domain in 0..DOMAINS {
        let mut cfg = DbConfig::small_for_tests();
        cfg.db_pages = 1024;
        cfg.mem_frames = 4;
        cfg.replacement = policy.0;
        let mut s = SsdConfig::new(design, 64);
        s.partitions = 2;
        s.admission = policy.1;
        cfg.ssd = Some(s);
        let db = Arc::new(Database::open(cfg));
        if fault == Fault::Transient {
            db.io()
                .set_ssd_fault(Some(Arc::new(FaultPlan::new(FaultConfig::transient(
                    seed ^ domain as u64,
                    0.05,
                )))));
        }
        if fault == Fault::Brownout {
            // Continuous brownout covering the whole active period (the
            // clients drain their op budgets well before t=10s); pure
            // function of virtual time, no RNG stream consumed.
            db.io()
                .set_ssd_fault(Some(Arc::new(FaultPlan::new(FaultConfig::brownout(
                    seed ^ domain as u64,
                    0,
                    10 * SECOND,
                )))));
        }
        let mut clk = Clk::new();
        let heap = db.create_heap(&mut clk, "data", 32, 256);
        min_service = min_service.min(db.io().setup().min_service_ns());
        for c in 0..CLIENTS_PER_DOMAIN {
            let final_time = Arc::new(AtomicU64::new(0));
            driver.add_in_domain(
                domain,
                0,
                Box::new(HeapClient {
                    db: Arc::clone(&db),
                    heap,
                    rng: SmallRng::seed_from_u64(
                        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (domain * 10 + c) as u64,
                    ),
                    rids: Vec::new(),
                    remaining: OPS_PER_CLIENT,
                    final_time: Arc::clone(&final_time),
                }),
            );
            final_times.push(final_time);
        }
        if let Some(cleaner) = CleanerClient::for_db(&db) {
            driver.add_in_domain(domain, 0, Box::new(cleaner));
        }
        dbs.push(db);
    }
    // Tiny window: many merges per run.
    driver.set_lookahead(min_service.saturating_mul(16));
    Scenario {
        driver,
        dbs,
        final_times,
    }
}

/// Fold every page image of a store into one hash.
fn store_fingerprint(store: &dyn PageStore) -> u64 {
    let mut buf = vec![0u8; store.page_size()];
    let mut h = 0u64;
    for pid in 0..store.num_pages() {
        store.read(PageId(pid), &mut buf);
        h = h.rotate_left(7) ^ checksum(&buf);
    }
    h
}

/// Everything the acceptance criterion compares, per scenario run.
#[derive(Debug, PartialEq)]
struct Outcome {
    steps: u64,
    scheduled_clocks: Vec<(usize, u64)>,
    final_times: Vec<u64>,
    ssd_metrics: Vec<Option<turbopool::core::metrics::SsdMetricsSnapshot>>,
    pool: Vec<turbopool::bufpool::PoolStats>,
    policy: Vec<turbopool::bufpool::PolicyStats>,
    disk: Vec<turbopool::iosim::StatSnapshot>,
    ssd_dev: Vec<turbopool::iosim::StatSnapshot>,
    ssd_failslow: Vec<turbopool::iosim::FailSlowStats>,
    disk_failslow: Vec<turbopool::iosim::FailSlowStats>,
    ssd_fault: Vec<Option<turbopool::iosim::fault::FaultStats>>,
    disk_images: Vec<u64>,
    ssd_images: Vec<u64>,
}

fn outcome(s: &Scenario) -> Outcome {
    Outcome {
        steps: s.driver.steps(),
        scheduled_clocks: s.driver.clocks(),
        final_times: s
            .final_times
            .iter()
            .map(|t| t.load(Ordering::Relaxed))
            .collect(),
        ssd_metrics: s.dbs.iter().map(|db| db.ssd_metrics()).collect(),
        pool: s.dbs.iter().map(|db| db.pool_stats()).collect(),
        policy: s.dbs.iter().map(|db| db.policy_stats()).collect(),
        disk: s.dbs.iter().map(|db| db.io().disk_stats()).collect(),
        ssd_dev: s.dbs.iter().map(|db| db.io().ssd_stats()).collect(),
        ssd_failslow: s.dbs.iter().map(|db| db.io().ssd_failslow()).collect(),
        disk_failslow: s.dbs.iter().map(|db| db.io().disk_failslow()).collect(),
        ssd_fault: s
            .dbs
            .iter()
            .map(|db| db.io().ssd_fault().map(|p| p.stats()))
            .collect(),
        disk_images: s
            .dbs
            .iter()
            .map(|db| store_fingerprint(db.io().disk_store()))
            .collect(),
        ssd_images: s
            .dbs
            .iter()
            .map(|db| store_fingerprint(db.io().ssd_store()))
            .collect(),
    }
}

fn sequential_outcome(design: SsdDesign, seed: u64, fault: Fault) -> Outcome {
    let mut s = build(design, seed, fault);
    s.driver.run_until(END);
    let out = outcome(&s);
    assert!(
        out.final_times.iter().all(|&t| t > 0),
        "horizon too short: a client did not drain its op budget"
    );
    out
}

fn parallel_outcome(design: SsdDesign, seed: u64, fault: Fault, threads: usize) -> Outcome {
    let mut s = build(design, seed, fault);
    s.driver.run_until_parallel(END, threads);
    outcome(&s)
}

#[test]
fn parallel_is_bit_identical_to_sequential_on_every_design() {
    for (i, &design) in DESIGNS.iter().enumerate() {
        for seed_no in 0..3u64 {
            let seed = 0xDE7E + 101 * i as u64 + seed_no;
            let seq = sequential_outcome(design, seed, Fault::None);
            assert!(seq.steps > 0);
            for threads in [2, 4, 8] {
                let par = parallel_outcome(design, seed, Fault::None, threads);
                assert_eq!(
                    par, seq,
                    "{design:?} seed {seed}: {threads}-thread run diverged from sequential"
                );
            }
        }
    }
}

#[test]
fn policy_swap_is_bit_identical_to_sequential_on_every_design() {
    // Every non-default replacement policy, against every SSD design and
    // two seeds. The admission policy cycles with the seed so both
    // non-default admission kinds cross every (replacement, design) cell.
    let replacements = [
        ReplacementKind::Clock,
        ReplacementKind::Sieve,
        ReplacementKind::LruK { k: 3 },
        ReplacementKind::Ghost,
    ];
    for (ri, &replacement) in replacements.iter().enumerate() {
        for (di, &design) in DESIGNS.iter().enumerate() {
            for seed_no in 0..2u64 {
                let admission = if seed_no == 0 {
                    AdmissionKind::AdmitAll
                } else {
                    AdmissionKind::GhostHit
                };
                let policy = (replacement, admission);
                let seed = 0x9013u64 + 977 * ri as u64 + 131 * di as u64 + seed_no;
                let mut s = build_policy(design, seed, Fault::None, policy);
                s.driver.run_until(END);
                let seq = outcome(&s);
                assert!(seq.steps > 0);
                assert!(
                    seq.final_times.iter().all(|&t| t > 0),
                    "horizon too short under {policy:?}"
                );
                for threads in [2, 4, 8] {
                    let mut s = build_policy(design, seed, Fault::None, policy);
                    s.driver.run_until_parallel(END, threads);
                    let par = outcome(&s);
                    assert_eq!(
                        par, seq,
                        "{design:?} {policy:?} seed {seed}: {threads}-thread run diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn parallel_replay_of_brownout_matches_sequential() {
    // Gray failure must replay bit-identically: same detector transitions,
    // same hedge/brownout counters, same page images, at every thread
    // count. LC carries the sole-copy-dirty hedging exception; CW is the
    // simplest all-clean design — cover both.
    for design in [SsdDesign::CleanWrite, SsdDesign::LazyCleaning] {
        let seq = sequential_outcome(design, 0xB70_07, Fault::Brownout);
        for threads in [2, 4, 8] {
            let par = parallel_outcome(design, 0xB70_07, Fault::Brownout, threads);
            assert_eq!(
                par, seq,
                "{design:?}: brownout run diverged at {threads} threads"
            );
        }
        // Non-vacuity: the brownout actually tripped the detector and
        // diverted traffic.
        let fs = &seq.ssd_failslow[0];
        assert!(fs.transitions > 0, "detector never tripped: {fs:?}");
        assert!(fs.slow_samples > 0, "no slow samples observed: {fs:?}");
        let m = seq.ssd_metrics[0].as_ref().expect("design has an SSD");
        assert!(
            m.hedged_reads > 0 || m.hedged_admissions > 0,
            "no traffic was hedged away from the browned-out SSD: {m:?}"
        );
        let f = seq.ssd_fault[0].as_ref().expect("plan attached");
        assert!(
            f.brownout_slowdowns > 0,
            "fault plan never scaled a request: {f:?}"
        );
    }
}

#[test]
fn parallel_replay_of_fault_injection_matches_sequential() {
    // Write-back (LC) exercises the most fault machinery: retries,
    // checksum misses, dirty-page protection.
    let seq = sequential_outcome(SsdDesign::LazyCleaning, 0xFA11, Fault::Transient);
    let par = parallel_outcome(SsdDesign::LazyCleaning, 0xFA11, Fault::Transient, 4);
    assert_eq!(par, seq, "faulty run diverged under the parallel driver");
    // The faults actually fired — this was not a vacuous comparison.
    let m = seq.ssd_metrics[0].as_ref().expect("LC has an SSD");
    assert!(
        m.ssd_io_errors > 0,
        "transient plan injected no errors: {m:?}"
    );
}
