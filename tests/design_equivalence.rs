//! Cross-design equivalence: the SSD cache must be transparent.
//!
//! The same seeded workload, run under noSSD / CW / DW / LC / TAC, must
//! produce byte-identical logical database contents — caching is a
//! performance layer, never a semantic one.

use std::sync::Arc;

use turbopool::core::{SsdConfig, SsdDesign};
use turbopool::engine::{Database, DbConfig};
use turbopool::iosim::rng::SmallRng;
use turbopool::iosim::rng::{Rng, SeedableRng};
use turbopool::iosim::Clk;

fn db_for(design: Option<SsdDesign>) -> Database {
    let mut cfg = DbConfig::small_for_tests();
    cfg.db_pages = 2048;
    cfg.mem_frames = 24; // tiny: force heavy eviction traffic through the SSD
    cfg.ssd = design.map(|d| {
        let mut s = SsdConfig::new(d, 96);
        s.partitions = 4;
        s.lambda = 0.3;
        s
    });
    Database::open(cfg)
}

/// Run a mixed heap+index workload and return a digest of final contents.
fn run_workload(db: &Database, seed: u64, txns: usize, with_checkpoints: bool) -> Vec<u8> {
    let mut clk = Clk::new();
    let h = db.create_heap(&mut clk, "data", 32, 256);
    let idx = db.create_index(&mut clk, "pk", 700);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut live: Vec<(u64, u64)> = Vec::new(); // (key, rid)

    for t in 0..txns {
        let mut txn = db.begin(&mut clk);
        match rng.gen_range(0u32..10) {
            // Insert (most common).
            0..=4 => {
                let key = rng.gen_range(0..100_000u64) | 1 << 32 | (t as u64) << 33;
                let mut rec = [0u8; 32];
                rec[..8].copy_from_slice(&key.to_le_bytes());
                if let Ok(rid) = txn.heap_insert(h, &rec) {
                    txn.index_insert(idx, key, rid);
                    live.push((key, rid));
                }
            }
            // Update.
            5..=7 if !live.is_empty() => {
                let &(key, rid) = &live[rng.gen_range(0..live.len())];
                let mut rec = txn.heap_get(h, rid).unwrap();
                let v = u64::from_le_bytes(rec[8..16].try_into().unwrap());
                rec[8..16].copy_from_slice(&(v + 1).to_le_bytes());
                txn.heap_update(h, rid, &rec);
                let _ = key;
            }
            // Delete.
            8 if !live.is_empty() => {
                let i = rng.gen_range(0..live.len());
                let (key, rid) = live.remove(i);
                txn.heap_delete(h, rid);
                txn.index_delete(idx, key);
            }
            // Abort a prepared insert.
            _ => {
                let _ = txn.heap_insert(h, &[9u8; 32]);
                txn.abort();
                continue;
            }
        }
        txn.commit();
        if with_checkpoints && t % 97 == 96 {
            db.checkpoint(&mut clk);
        }
    }

    // Digest: full scan + index verification.
    let mut digest = Vec::new();
    db.scan_heap(&mut clk, h, |rid, rec| {
        digest.extend_from_slice(&rid.to_le_bytes());
        digest.extend_from_slice(rec);
    })
    .unwrap();
    live.sort_unstable();
    let mut txn = db.begin(&mut clk);
    for &(key, rid) in &live {
        assert_eq!(txn.index_get(idx, key), Some(rid), "index lookup of {key}");
    }
    txn.commit();
    digest
}

#[test]
fn all_designs_produce_identical_contents() {
    let designs = [
        None,
        Some(SsdDesign::CleanWrite),
        Some(SsdDesign::DualWrite),
        Some(SsdDesign::LazyCleaning),
        Some(SsdDesign::Tac),
    ];
    let mut reference: Option<Vec<u8>> = None;
    for d in designs {
        let db = db_for(d);
        let digest = run_workload(&db, 42, 800, true);
        match &reference {
            None => reference = Some(digest),
            Some(r) => assert_eq!(r, &digest, "contents diverged under {d:?}"),
        }
    }
}

#[test]
fn all_designs_identical_after_crash_recovery() {
    let designs = [
        None,
        Some(SsdDesign::CleanWrite),
        Some(SsdDesign::DualWrite),
        Some(SsdDesign::LazyCleaning),
        Some(SsdDesign::Tac),
    ];
    let mut reference: Option<Vec<u8>> = None;
    for d in designs {
        let db = db_for(d);
        let _ = run_workload(&db, 7, 500, false);
        // Crash without a final checkpoint: recovery must replay the log.
        let (db2, stats) = Database::recover(db.crash());
        assert!(stats.records_scanned > 0, "design {d:?} had an empty log");
        let mut clk = Clk::new();
        let mut digest = Vec::new();
        db2.scan_heap(&mut clk, 0, |rid, rec| {
            digest.extend_from_slice(&rid.to_le_bytes());
            digest.extend_from_slice(rec);
        })
        .unwrap();
        match &reference {
            None => reference = Some(digest),
            Some(r) => assert_eq!(r, &digest, "post-recovery contents diverged under {d:?}"),
        }
    }
}

#[test]
fn lc_loses_nothing_when_crashing_with_dirty_ssd_pages() {
    // The dangerous design: newest versions live only on the SSD, and the
    // SSD is NOT consulted at restart. WAL + sharp checkpoints must cover.
    let db = db_for(Some(SsdDesign::LazyCleaning));
    let mut clk = Clk::new();
    let h = db.create_heap(&mut clk, "data", 32, 256);
    let mut rng = SmallRng::seed_from_u64(3);
    let mut expect = Vec::new();
    for i in 0..400u64 {
        let mut txn = db.begin(&mut clk);
        let mut rec = [0u8; 32];
        rec[..8].copy_from_slice(&i.to_le_bytes());
        rec[8] = rng.gen();
        let rid = txn.heap_insert(h, &rec).unwrap();
        txn.commit();
        expect.push((rid, rec));
    }
    let mgr = Arc::clone(db.ssd_manager().unwrap());
    // Ensure the SSD really holds dirty (newer-than-disk) pages at crash.
    assert!(mgr.dirty_count() > 0, "test needs dirty SSD pages");
    let (db2, _) = Database::recover(db.crash());
    let mut clk = Clk::new();
    let mut txn = db2.begin(&mut clk);
    for (rid, rec) in expect {
        assert_eq!(txn.heap_get(h, rid).unwrap(), rec.to_vec(), "rid {rid}");
    }
    txn.commit();
}
