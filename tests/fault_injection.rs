//! Seeded fault-injection matrix: every SSD design crossed with every
//! fault kind, verified for zero committed-data loss against a fault-free
//! run of the identical workload.
//!
//! What each design owes the engine when its SSD misbehaves (DESIGN.md §8):
//!
//! * **CW / DW / TAC** are write-through — the disk always holds the
//!   current committed image, so any SSD failure (death, corruption,
//!   transient errors) may cost hits but never data. The committed state
//!   after a mid-workload SSD death must be byte-identical to the no-fault
//!   run.
//! * **LC** is write-back — the SSD can hold the *sole* current copy of
//!   committed pages. SSD death strands those pages; the engine must
//!   rebuild them from the committed WAL tail (`Database::salvage`) and the
//!   final state must still match the no-fault run exactly.
//!
//! The whole simulation is deterministic, so a same-seed replay must also
//! reproduce the fault counters bit-for-bit (acceptance criterion for the
//! fault layer: faults are part of the virtual-time experiment, not an
//! outside source of nondeterminism).

use std::collections::BTreeMap;
use std::sync::Arc;

use turbopool::core::metrics::SsdMetricsSnapshot;
use turbopool::core::{SsdConfig, SsdDesign};
use turbopool::engine::{Database, DbConfig};
use turbopool::iosim::fault::{FaultConfig, FaultPlan};
use turbopool::iosim::rng::{Rng, SeedableRng, SmallRng};
use turbopool::iosim::Clk;

const DESIGNS: [SsdDesign; 4] = [
    SsdDesign::CleanWrite,
    SsdDesign::DualWrite,
    SsdDesign::LazyCleaning,
    SsdDesign::Tac,
];

/// Which fault to inject mid-workload.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Fault {
    None,
    /// The SSD dies at the workload's midpoint.
    Death,
    /// Transient read/write errors on the SSD for the whole run.
    Transient,
    /// Every SSD write persists only a prefix of the frame.
    TornWrites,
    /// Random bit corruption on every SSD frame read.
    BitFlips,
}

struct RunResult {
    /// rid -> committed (byte0, byte1), read back at the end of the run.
    readback: BTreeMap<u64, (u8, u8)>,
    metrics: SsdMetricsSnapshot,
}

/// Drive a deterministic insert/update workload against `design`,
/// injecting `fault`, and read every committed record back at the end.
/// The pool is kept tiny so pages constantly spill to the SSD tier.
fn run(design: SsdDesign, fault: Fault, seed: u64) -> RunResult {
    let mut cfg = DbConfig::small_for_tests();
    cfg.db_pages = 1024;
    cfg.mem_frames = 4;
    let mut s = SsdConfig::new(design, 64);
    s.partitions = 2;
    cfg.ssd = Some(s);
    let db = Database::open(cfg);
    let mut clk = Clk::new();
    let h = db.create_heap(&mut clk, "data", 32, 256);

    // Whole-run fault plans attach before the first op.
    match fault {
        Fault::Transient => {
            db.io()
                .set_ssd_fault(Some(Arc::new(FaultPlan::new(FaultConfig::transient(
                    seed, 0.05,
                )))));
        }
        Fault::TornWrites => {
            let mut fc = FaultConfig::quiet(seed);
            fc.torn_write_prob = 0.3;
            db.io().set_ssd_fault(Some(Arc::new(FaultPlan::new(fc))));
        }
        Fault::BitFlips => {
            let mut fc = FaultConfig::quiet(seed);
            fc.bitflip_prob = 0.2;
            db.io().set_ssd_fault(Some(Arc::new(FaultPlan::new(fc))));
        }
        Fault::None | Fault::Death => {}
    }

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut model: BTreeMap<u64, (u8, u8)> = BTreeMap::new();
    const OPS: usize = 400;
    for i in 0..OPS {
        if i == OPS / 2 && fault == Fault::Death {
            let plan = Arc::new(FaultPlan::new(FaultConfig::quiet(seed)));
            db.io().set_ssd_fault(Some(Arc::clone(&plan)));
            plan.kill(clk.now);
        }
        if rng.gen_range(0u32..3) == 0 && !model.is_empty() {
            // Update a random committed record's second byte.
            let keys: Vec<u64> = model.keys().copied().collect();
            let rid = keys[rng.gen_range(0..keys.len() as u64) as usize];
            let val: u8 = rng.gen();
            let mut txn = db.begin(&mut clk);
            let mut rec = txn.heap_get(h, rid).expect("committed rid readable");
            rec[1] = val;
            txn.heap_update(h, rid, &rec);
            assert!(txn.commit().is_committed(), "SSD faults must not abort");
            model.get_mut(&rid).unwrap().1 = val;
        } else {
            let v: u8 = rng.gen();
            let mut rec = [0u8; 32];
            rec[0] = v;
            let mut txn = db.begin(&mut clk);
            if let Ok(rid) = txn.heap_insert(h, &rec) {
                assert!(txn.commit().is_committed(), "SSD faults must not abort");
                model.insert(rid, (v, 0));
            }
        }
    }

    // Read-heavy phase: random point reads churn the tiny pool so clean
    // pages spill to (and are re-read from) the SSD — this is where torn
    // and bit-flipped frames get caught.
    let keys: Vec<u64> = model.keys().copied().collect();
    for _ in 0..800 {
        let rid = keys[rng.gen_range(0..keys.len() as u64) as usize];
        let mut txn = db.begin(&mut clk);
        let rec = txn.heap_get(h, rid).expect("committed rid readable");
        assert_eq!((rec[0], rec[1]), model[&rid], "{design:?}/{fault:?}");
        assert!(txn.commit().is_committed());
    }

    // Read back every committed record.
    let mut readback = BTreeMap::new();
    let mut txn = db.begin(&mut clk);
    for (&rid, _) in &model {
        let rec = txn
            .heap_get(h, rid)
            .unwrap_or_else(|| panic!("{design:?}/{fault:?}: rid {rid} lost"));
        readback.insert(rid, (rec[0], rec[1]));
    }
    assert!(txn.commit().is_committed());
    // The database must agree with the in-memory model of committed state.
    assert_eq!(
        readback, model,
        "{design:?}/{fault:?}: committed data diverged"
    );
    RunResult {
        readback,
        metrics: db.ssd_metrics().expect("all matrix designs have an SSD"),
    }
}

#[test]
fn ssd_death_loses_no_committed_data_in_any_design() {
    for (i, design) in DESIGNS.iter().enumerate() {
        let seed = 0xFA17 + i as u64;
        let clean = run(*design, Fault::None, seed);
        let dead = run(*design, Fault::Death, seed);
        // Same workload, same committed state — the dead SSD cost hits,
        // never data.
        assert_eq!(
            clean.readback, dead.readback,
            "{design:?}: state after SSD death differs from fault-free run"
        );
        assert_eq!(
            dead.metrics.ssd_quarantined, 1,
            "{design:?} must quarantine"
        );
        if *design == SsdDesign::LazyCleaning {
            // Write-back: death strands sole-copy dirty pages, which must
            // come back through the WAL-tail salvage path.
            assert!(dead.metrics.stranded_dirty > 0, "LC strands dirty pages");
            assert!(dead.metrics.salvaged_pages > 0, "LC salvages via the WAL");
        } else {
            // Write-through designs never have a sole copy to strand.
            assert_eq!(
                dead.metrics.stranded_dirty, 0,
                "{design:?} is write-through"
            );
        }
        // The fault-free twin saw none of this.
        assert_eq!(clean.metrics.ssd_quarantined, 0);
        assert_eq!(clean.metrics.ssd_io_errors, 0);
    }
}

#[test]
fn transient_ssd_errors_are_absorbed_by_retries() {
    for (i, design) in DESIGNS.iter().enumerate() {
        let seed = 0x7236 + i as u64;
        let clean = run(*design, Fault::None, seed);
        let noisy = run(*design, Fault::Transient, seed);
        assert_eq!(
            clean.readback, noisy.readback,
            "{design:?}: transient SSD errors changed committed state"
        );
    }
}

#[test]
fn torn_ssd_writes_are_caught_by_checksums() {
    for (i, design) in DESIGNS.iter().enumerate() {
        let seed = 0x7047 + i as u64;
        let clean = run(*design, Fault::None, seed);
        let torn = run(*design, Fault::TornWrites, seed);
        assert_eq!(
            clean.readback, torn.readback,
            "{design:?}: a torn frame reached a reader"
        );
        // The partial frames were detected (checksum), not silently served.
        assert!(
            torn.metrics.checksum_misses > 0,
            "{design:?}: expected the checksum to catch torn frames"
        );
    }
}

#[test]
fn bitflip_corruption_is_caught_by_checksums() {
    for (i, design) in DESIGNS.iter().enumerate() {
        let seed = 0xB17F + i as u64;
        let clean = run(*design, Fault::None, seed);
        let flipped = run(*design, Fault::BitFlips, seed);
        assert_eq!(
            clean.readback, flipped.readback,
            "{design:?}: corrupted frame bytes reached a reader"
        );
        assert!(
            flipped.metrics.checksum_misses > 0,
            "{design:?}: expected the checksum to catch bit flips"
        );
    }
}

#[test]
fn same_seed_replay_reproduces_identical_fault_counters() {
    for design in DESIGNS {
        for fault in [Fault::Death, Fault::Transient, Fault::TornWrites] {
            let a = run(design, fault, 0xD07);
            let b = run(design, fault, 0xD07);
            assert_eq!(
                a.metrics, b.metrics,
                "{design:?}/{fault:?}: fault counters are not reproducible"
            );
        }
    }
}
