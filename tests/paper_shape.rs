//! End-to-end shape checks: shortened versions of the paper's headline
//! claims that must hold on every build.
//!
//! These run scaled-down/shortened configurations so the suite stays
//! fast; the full-length reproductions live in `crates/bench/benches/`.

use std::sync::Arc;

use turbopool::iosim::{HOUR, MINUTE};

/// Debug builds run the simulation ~20x slower than release; scale the
/// virtual durations down (the asserted shapes emerge well before the
/// full-length runs finish).
fn hours(h: u64) -> u64 {
    if cfg!(debug_assertions) {
        (h / 2).max(2)
    } else {
        h
    }
}
use turbopool::workload::driver::{CleanerClient, Driver, ThroughputRecorder};
use turbopool::workload::scenario::Design;
use turbopool::workload::tpcc::Tpcc;
use turbopool::workload::tpch::{self, Tpch};

/// Run TPC-C for `hours` and return the last-hour NewOrder rate.
fn tpcc_rate(design: Design, hours: u64) -> f64 {
    let t = Arc::new(Tpcc::setup_opt(design, 8, 0.5, 40));
    let rec = ThroughputRecorder::new(6 * MINUTE);
    let mut d = Driver::new();
    for c in 0..16 {
        d.add(0, Box::new(t.client(c, Arc::clone(&rec))));
    }
    if let Some(cleaner) = CleanerClient::for_db(&t.db) {
        d.add(0, Box::new(cleaner));
    }
    let dur = hours * HOUR;
    d.run_until(dur);
    rec.rate_between(dur - HOUR, dur, MINUTE)
}

#[test]
fn tpcc_lc_beats_dw_beats_nossd() {
    // Figure 5 (a-c) ordering: LC >> DW > noSSD on update-heavy TPC-C.
    let nossd = tpcc_rate(Design::NoSsd, hours(6));
    let dw = tpcc_rate(Design::Dw, hours(6));
    let lc = tpcc_rate(Design::Lc, hours(6));
    assert!(
        lc > 2.0 * nossd,
        "LC must be a multiple of noSSD: lc={lc:.2} nossd={nossd:.2}"
    );
    assert!(
        lc > 1.5 * dw,
        "write-back must beat write-through on TPC-C: lc={lc:.2} dw={dw:.2}"
    );
    assert!(
        dw > nossd,
        "even write-through beats no SSD: dw={dw:.2} nossd={nossd:.2}"
    );
}

#[test]
fn tpcc_is_update_intensive_and_skewed() {
    // §4.2: the workload properties the LC advantage relies on.
    let t = Arc::new(Tpcc::setup_opt(Design::Lc, 4, 0.9, 60));
    let rec = ThroughputRecorder::new(6 * MINUTE);
    let mut d = Driver::new();
    for c in 0..8 {
        d.add(0, Box::new(t.client(c, Arc::clone(&rec))));
    }
    d.run_until(hours(4) * HOUR);
    let m = t.db.ssd_metrics().unwrap();
    // A large share of SSD hits land on dirty pages (paper: ~83% at 2K).
    assert!(
        m.dirty_hit_fraction() > 0.3,
        "dirty-hit fraction too low: {:.2}",
        m.dirty_hit_fraction()
    );
    let pool = t.db.pool_stats();
    assert!(
        pool.evictions_dirty as f64 > 0.2 * pool.evictions_clean as f64,
        "update intensity missing: {pool:?}"
    );
}

#[test]
fn tpch_designs_are_similar_and_beat_nossd() {
    // Figure 5 (g,h): read-dominated DSS — all SSD designs close together.
    let mut qphh = Vec::new();
    for design in [Design::NoSsd, Design::Dw, Design::Lc] {
        tpch::reset_finish_time();
        let t = Arc::new(Tpch::setup(design, 25, 0.01));
        let mut clk = turbopool::iosim::Clk::new();
        let p = t.power_test(&mut clk);
        tpch::reset_finish_time();
        let tput = t.throughput_test(2);
        qphh.push(tpch::qphh(p.power, tput));
    }
    let (nossd, dw, lc) = (qphh[0], qphh[1], qphh[2]);
    assert!(dw > 1.5 * nossd, "dw={dw:.0} nossd={nossd:.0}");
    assert!(lc > 1.5 * nossd, "lc={lc:.0} nossd={nossd:.0}");
    let ratio = dw / lc;
    assert!(
        (0.6..1.6).contains(&ratio),
        "DW and LC should be similar on read-heavy DSS: {ratio:.2}"
    );
}

#[test]
fn lc_cleaner_kicks_in_at_lambda() {
    // Figure 6 mechanism: dirty pages accumulate to λ·S, then the cleaner
    // holds them there.
    let t = Arc::new(Tpcc::setup_opt(Design::Lc, 4, 0.05, 60));
    let mgr = Arc::clone(t.db.ssd_manager().unwrap());
    let high = mgr.config().dirty_high_water();
    let rec = ThroughputRecorder::new(6 * MINUTE);
    let mut d = Driver::new();
    for c in 0..8 {
        d.add(0, Box::new(t.client(c, Arc::clone(&rec))));
    }
    d.add(0, Box::new(CleanerClient::for_db(&t.db).unwrap()));
    d.run_until(hours(6) * HOUR);
    let m = t.db.ssd_metrics().unwrap();
    assert!(m.cleaned_pages > 0, "cleaner never ran");
    // The dirty count is held near/below the high-water mark (small
    // overshoot allowed for in-flight work).
    assert!(
        mgr.dirty_count() <= high + high / 5,
        "dirty {} way above λ·S = {high}",
        mgr.dirty_count()
    );
}
