//! Determinism gate for the sharded hot path (ISSUE 9): for every SSD
//! design and every shard count in {1, 4, 16}, the parallel driver at
//! 2/4/8 worker threads must be **bit-identical** to the sequential
//! driver — same client steps, same final virtual times, same SSD and
//! buffer-pool counters (including the new per-shard lock counters:
//! acquisitions are a pure function of the op sequence and contended
//! acquisitions are zero in share-nothing deterministic runs), and
//! byte-identical page images on both stores.
//!
//! Two further gates ride along:
//! * `ShardCount::Fixed(1)` must reproduce the default configuration
//!   (`Auto` resolving against the engine's shard hint of 1) exactly —
//!   the legacy single-latch behavior is the `shards = 1` special case,
//!   not a separate code path.
//! * The invariant auditor must stay clean across the whole grid.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use turbopool::bufpool::ShardCount;
use turbopool::core::{SsdConfig, SsdDesign};
use turbopool::engine::{Database, DbConfig, HeapId};
use turbopool::iosim::fault::checksum;
use turbopool::iosim::rng::{Rng, SeedableRng, SmallRng};
use turbopool::iosim::store::PageStore;
use turbopool::iosim::{Clk, PageId, MICROSECOND, SECOND};
use turbopool::workload::driver::{CleanerClient, Client, Driver, StepResult};

const DOMAINS: usize = 2;
const CLIENTS_PER_DOMAIN: usize = 3;
const OPS_PER_CLIENT: usize = 80;
const SHARD_COUNTS: [usize; 3] = [1, 4, 16];
const THREADS: [usize; 3] = [2, 4, 8];

/// Virtual horizon; generous enough that every client drains its op
/// budget (asserted below via `final_times`).
const END: u64 = 30 * SECOND;

/// Same transaction-stream client as `driver_determinism`: inserts,
/// updates and point reads from a per-client seeded RNG.
struct HeapClient {
    db: Arc<Database>,
    heap: HeapId,
    rng: SmallRng,
    rids: Vec<u64>,
    remaining: usize,
    final_time: Arc<AtomicU64>,
}

impl Client for HeapClient {
    fn step(&mut self, clk: &mut Clk) -> StepResult {
        if self.remaining == 0 {
            self.final_time.store(clk.now, Ordering::Relaxed);
            return StepResult::Done;
        }
        self.remaining -= 1;
        clk.elapse(10 * MICROSECOND);
        let mut txn = self.db.begin(clk);
        let kind = self.rng.gen_range(0u32..4);
        if kind == 0 || self.rids.is_empty() {
            let v: u8 = self.rng.gen();
            let mut rec = [0u8; 32];
            rec[0] = v;
            if let Ok(rid) = txn.heap_insert(self.heap, &rec) {
                self.rids.push(rid);
            }
        } else {
            let rid = self.rids[self.rng.gen_range(0..self.rids.len() as u64) as usize];
            if kind == 1 {
                if let Some(mut rec) = txn.heap_get(self.heap, rid) {
                    rec[1] = rec[1].wrapping_add(1);
                    txn.heap_update(self.heap, rid, &rec);
                }
            } else {
                txn.heap_get(self.heap, rid);
            }
        }
        assert!(txn.commit().is_committed());
        StepResult::Continue
    }
}

struct Scenario {
    driver: Driver,
    dbs: Vec<Arc<Database>>,
    final_times: Vec<Arc<AtomicU64>>,
}

/// Build a driver over `DOMAINS` share-nothing databases with the given
/// shard configuration applied to both the DRAM pool and the TAC table.
fn build(design: SsdDesign, seed: u64, shards: Option<usize>) -> Scenario {
    let mut dbs = Vec::new();
    let mut final_times = Vec::new();
    let mut driver = Driver::new();
    let mut min_service = u64::MAX;
    for domain in 0..DOMAINS {
        let mut cfg = DbConfig::small_for_tests();
        cfg.db_pages = 1024;
        cfg.mem_frames = 4;
        let mut s = SsdConfig::new(design, 64);
        s.partitions = 2;
        cfg.ssd = Some(s);
        if let Some(n) = shards {
            cfg.pool_shards = ShardCount::Fixed(n);
            cfg.tac_shards = ShardCount::Fixed(n);
        }
        let db = Arc::new(Database::open(cfg));
        let mut clk = Clk::new();
        let heap = db.create_heap(&mut clk, "data", 32, 256);
        min_service = min_service.min(db.io().setup().min_service_ns());
        for c in 0..CLIENTS_PER_DOMAIN {
            let final_time = Arc::new(AtomicU64::new(0));
            driver.add_in_domain(
                domain,
                0,
                Box::new(HeapClient {
                    db: Arc::clone(&db),
                    heap,
                    rng: SmallRng::seed_from_u64(
                        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (domain * 10 + c) as u64,
                    ),
                    rids: Vec::new(),
                    remaining: OPS_PER_CLIENT,
                    final_time: Arc::clone(&final_time),
                }),
            );
            final_times.push(final_time);
        }
        if let Some(cleaner) = CleanerClient::for_db(&db) {
            driver.add_in_domain(domain, 0, Box::new(cleaner));
        }
        dbs.push(db);
    }
    // Tiny lookahead: many window merges per run.
    driver.set_lookahead(min_service.saturating_mul(16));
    Scenario {
        driver,
        dbs,
        final_times,
    }
}

fn store_fingerprint(store: &dyn PageStore) -> u64 {
    let mut buf = vec![0u8; store.page_size()];
    let mut h = 0u64;
    for pid in 0..store.num_pages() {
        store.read(PageId(pid), &mut buf);
        h = h.rotate_left(7) ^ checksum(&buf);
    }
    h
}

/// Everything the gate compares per run, including the new per-shard
/// lock counters (inside `PoolStats` and `SsdMetricsSnapshot`).
#[derive(Debug, PartialEq)]
struct Outcome {
    steps: u64,
    scheduled_clocks: Vec<(usize, u64)>,
    final_times: Vec<u64>,
    ssd_metrics: Vec<Option<turbopool::core::metrics::SsdMetricsSnapshot>>,
    pool: Vec<turbopool::bufpool::PoolStats>,
    policy: Vec<turbopool::bufpool::PolicyStats>,
    disk_images: Vec<u64>,
    ssd_images: Vec<u64>,
}

fn outcome(s: &Scenario) -> Outcome {
    for db in &s.dbs {
        if let Some(m) = db.ssd_metrics() {
            assert_eq!(m.audit_violations, 0, "invariant auditor saw violations");
        }
    }
    Outcome {
        steps: s.driver.steps(),
        scheduled_clocks: s.driver.clocks(),
        final_times: s
            .final_times
            .iter()
            .map(|t| t.load(Ordering::Relaxed))
            .collect(),
        ssd_metrics: s.dbs.iter().map(|db| db.ssd_metrics()).collect(),
        pool: s.dbs.iter().map(|db| db.pool_stats()).collect(),
        policy: s.dbs.iter().map(|db| db.policy_stats()).collect(),
        disk_images: s
            .dbs
            .iter()
            .map(|db| store_fingerprint(db.io().disk_store()))
            .collect(),
        ssd_images: s
            .dbs
            .iter()
            .map(|db| store_fingerprint(db.io().ssd_store()))
            .collect(),
    }
}

fn run(design: SsdDesign, seed: u64, shards: Option<usize>, threads: usize) -> Outcome {
    let mut s = build(design, seed, shards);
    if threads <= 1 {
        s.driver.run_until(END);
    } else {
        s.driver.run_until_parallel(END, threads);
    }
    let out = outcome(&s);
    assert!(
        out.final_times.iter().all(|&t| t > 0),
        "horizon too short: a client did not drain its op budget"
    );
    out
}

/// The full grid for one design: every shard count must replay
/// bit-identically at every driver thread count, and contended shard
/// acquisitions must be zero (driver domains are share-nothing).
fn grid(design: SsdDesign) {
    let seed = 0x51AD * 1000 + design as u64;
    for &shards in &SHARD_COUNTS {
        let seq = run(design, seed, Some(shards), 1);
        for m in seq.pool.iter() {
            assert_eq!(
                m.shard_contended, 0,
                "{design:?}/{shards}: contended pool shard acquisition in a deterministic run"
            );
        }
        for m in seq.ssd_metrics.iter().flatten() {
            assert_eq!(
                m.shard_contended, 0,
                "{design:?}/{shards}: contended SSD shard acquisition in a deterministic run"
            );
        }
        for &threads in &THREADS {
            let par = run(design, seed, Some(shards), threads);
            assert_eq!(
                seq, par,
                "{design:?} diverged: shards={shards} threads={threads}"
            );
        }
    }
}

#[test]
fn cw_replays_identically_at_every_shard_count() {
    grid(SsdDesign::CleanWrite);
}

#[test]
fn dw_replays_identically_at_every_shard_count() {
    grid(SsdDesign::DualWrite);
}

#[test]
fn lc_replays_identically_at_every_shard_count() {
    grid(SsdDesign::LazyCleaning);
}

#[test]
fn tac_replays_identically_at_every_shard_count() {
    grid(SsdDesign::Tac);
}

/// `Fixed(1)` is the legacy configuration, and the default (`Auto`
/// against the engine's shard hint of 1) must resolve to exactly it.
#[test]
fn one_shard_matches_default_config_bit_for_bit() {
    for design in [SsdDesign::LazyCleaning, SsdDesign::Tac] {
        let seed = 0xDEFA * 100 + design as u64;
        let fixed = run(design, seed, Some(1), 1);
        let auto = run(design, seed, None, 1);
        assert_eq!(fixed, auto, "{design:?}: Fixed(1) != default Auto config");
    }
}
