//! Exhaustive crash-schedule sweeps (recovery-hardening extension).
//!
//! For each buffer-pool design, a seeded trace is recorded to number every
//! durable-write boundary, then replayed once per boundary with power
//! failing exactly there — plus a torn-write variant of every cut, plus
//! double-crash schedules that interrupt recovery itself. Every incarnation
//! must recover to exactly the state predicted by commit attribution
//! (a transaction is durable iff its commit log-flush persisted), and the
//! whole sweep must be bit-identical across reruns.

use turbopool::core::{SsdConfig, SsdDesign};
use turbopool::engine::{explore, ExplorerConfig, ExplorerOutcome};

fn ssd(design: SsdDesign) -> Option<SsdConfig> {
    let mut s = SsdConfig::new(design, 32);
    s.partitions = 2;
    s.lambda = 0.5;
    // Exercise checkpoint-embedded SSD tables and probed re-adoption in
    // the crash schedules (TAC ignores the flag).
    s.warm_restart = true;
    Some(s)
}

fn sweep(ssd: Option<SsdConfig>) -> ExplorerOutcome {
    let mut cfg = ExplorerConfig::new(ssd);
    cfg.ops = 40;
    cfg.checkpoint_every = 8;
    cfg.torn_variants = true;
    cfg.cut_stride = 1; // exhaustive: every boundary is a crash point
    cfg.double_crash_stride = 6;
    explore(&cfg)
}

fn check(out: &ExplorerOutcome) {
    // Exhaustive coverage: one persist + one torn schedule per boundary.
    assert_eq!(out.schedules_run, out.boundaries * 2);
    assert_eq!(out.torn_schedules, out.boundaries);
    // Every kind of durable write appeared in the trace; a missing kind
    // means the trace no longer exercises that device's crash points.
    assert!(out.counts.log_flushes > 0, "no log-flush boundaries");
    assert!(out.counts.disk_pages > 0, "no disk-page boundaries");
    // A pure power failure never loses committed data.
    assert_eq!(out.damaged_reports, 0);
    // Double-crash schedules ran, and some actually caught recovery
    // mid-redo (forcing a re-entrant second pass).
    assert!(out.double_crash_armed > 0);
    assert!(
        out.double_crash_interrupted > 0,
        "no double-crash schedule interrupted recovery: {out:?}"
    );
    assert!(out.max_recovery_attempts >= 2);
}

#[test]
fn exhaustive_sweep_nossd() {
    let out = sweep(None);
    check(&out);
}

#[test]
fn exhaustive_sweep_clean_write() {
    let out = sweep(ssd(SsdDesign::CleanWrite));
    check(&out);
    assert!(out.counts.ssd_frames > 0, "CW produced no SSD boundaries");
}

#[test]
fn exhaustive_sweep_dual_write() {
    let out = sweep(ssd(SsdDesign::DualWrite));
    check(&out);
    assert!(out.counts.ssd_frames > 0, "DW produced no SSD boundaries");
}

#[test]
fn exhaustive_sweep_lazy_cleaning() {
    let out = sweep(ssd(SsdDesign::LazyCleaning));
    check(&out);
    assert!(out.counts.ssd_frames > 0, "LC produced no SSD boundaries");
}

#[test]
fn exhaustive_sweep_tac() {
    let out = sweep(ssd(SsdDesign::Tac));
    check(&out);
    assert!(out.counts.ssd_frames > 0, "TAC produced no SSD boundaries");
}

/// The whole sweep — boundary numbering, every recovered value, every
/// report — replays bit-identically. This is the property that makes a
/// crash-schedule failure reproducible from nothing but its cut number.
#[test]
fn sweep_is_bit_identical_across_reruns() {
    let a = sweep(ssd(SsdDesign::LazyCleaning));
    let b = sweep(ssd(SsdDesign::LazyCleaning));
    assert_eq!(a, b, "rerun diverged");
    // And the fingerprint is sensitive to the schedule outcomes: a
    // different trace must not collide.
    let mut cfg = ExplorerConfig::new(ssd(SsdDesign::LazyCleaning));
    cfg.ops = 40;
    cfg.checkpoint_every = 8;
    cfg.double_crash_stride = 6;
    cfg.seed ^= 1;
    let c = explore(&cfg);
    assert_ne!(a.fingerprint, c.fingerprint, "fingerprint ignores the data");
}

/// Strided sweep across all five designs — the cheap smoke test that
/// `scripts/check.sh` runs on every change.
#[test]
fn quick_sweep_all_designs() {
    for design in [
        None,
        ssd(SsdDesign::CleanWrite),
        ssd(SsdDesign::DualWrite),
        ssd(SsdDesign::LazyCleaning),
        ssd(SsdDesign::Tac),
    ] {
        let mut cfg = ExplorerConfig::new(design);
        cfg.ops = 16;
        cfg.checkpoint_every = 6;
        cfg.cut_stride = 9;
        cfg.double_crash_stride = 18;
        let out = explore(&cfg);
        assert!(out.schedules_run > 0);
        assert_eq!(out.damaged_reports, 0);
    }
}
