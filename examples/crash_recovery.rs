//! Crash recovery under the lazy-cleaning design.
//!
//! LC is the only design whose SSD holds pages *newer than disk*, so it is
//! the design for which recovery is interesting: the SSD's buffer table is
//! volatile and (as in the paper) nothing on the SSD is reused at restart —
//! durability comes from the WAL plus sharp checkpoints that flush
//! SSD-dirty pages. This example walks the whole lifecycle and proves no
//! committed transaction is lost and no aborted one resurfaces.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use turbopool::core::{SsdConfig, SsdDesign};
use turbopool::engine::{Database, DbConfig};
use turbopool::iosim::Clk;

fn main() {
    let mut cfg = DbConfig::new(8192, 4096, 32); // tiny pool: heavy eviction
    let mut ssd = SsdConfig::new(SsdDesign::LazyCleaning, 1024);
    ssd.lambda = 0.9; // let dirty pages pile up on the SSD
    cfg.ssd = Some(ssd);
    let db = Database::open(cfg);
    let mut clk = Clk::new();
    let accounts = db.create_heap(&mut clk, "accounts", 64, 1024);

    // Phase 1: committed baseline.
    for id in 0..20_000u64 {
        let mut txn = db.begin(&mut clk);
        let mut rec = [0u8; 64];
        rec[..8].copy_from_slice(&id.to_le_bytes());
        rec[8..16].copy_from_slice(&1_000u64.to_le_bytes()); // balance
        txn.heap_insert(accounts, &rec).unwrap();
        txn.commit();
    }
    let ckpt = db.checkpoint(&mut clk);
    println!(
        "checkpoint after load : {:.2}s (flushed pool + SSD dirty pages)",
        ckpt as f64 / 1e9
    );

    // Phase 2: post-checkpoint updates — these exist only in WAL + caches.
    for id in 0..5_000u64 {
        let mut txn = db.begin(&mut clk);
        let mut rec = txn.heap_get(accounts, id).unwrap();
        rec[8..16].copy_from_slice(&2_000u64.to_le_bytes());
        txn.heap_update(accounts, id, &rec);
        txn.commit();
    }
    // An in-flight transaction that never commits.
    {
        let mut txn = db.begin(&mut clk);
        let mut rec = txn.heap_get(accounts, 0).unwrap();
        rec[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        txn.heap_update(accounts, 0, &rec);
        txn.abort();
    }

    let mgr = db.ssd_manager().unwrap();
    println!(
        "at crash              : {} SSD-cached pages, {} of them dirty (newer than disk)",
        mgr.occupancy(),
        mgr.dirty_count()
    );

    // Phase 3: pull the plug.
    let (db2, stats) = Database::recover(db.crash());
    println!(
        "recovery              : {} log records scanned, {} committed txns redone, {} writes applied, {} loser writes skipped",
        stats.records_scanned, stats.txns_redone, stats.writes_applied, stats.writes_skipped
    );

    println!(
        "SSD after restart     : {} cached pages (cold start — the paper leaves reusing the SSD's old contents at restart as future work)",
        db2.ssd_manager().unwrap().occupancy()
    );

    // Phase 4: verify.
    let mut clk = Clk::new();
    let mut txn = db2.begin(&mut clk);
    for id in 0..20_000u64 {
        let rec = txn.heap_get(accounts, id).unwrap();
        let balance = u64::from_le_bytes(rec[8..16].try_into().unwrap());
        let expect = if id < 5_000 { 2_000 } else { 1_000 };
        assert_eq!(balance, expect, "account {id}");
    }
    txn.commit();
    println!("verification          : all 20,000 accounts correct; aborted update absent");
}
