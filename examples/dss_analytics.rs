//! DSS analytics: the TPC-H-lite power test with per-query timings.
//!
//! Shows where the SSD helps a scan-dominated workload: the full-scan
//! queries are unchanged (striped disks out-stream the SSD), while the
//! index-lookup queries collapse from disk-seek-bound to SSD-latency-bound
//! — the effect behind the paper's §4.4 results.
//!
//! ```sh
//! cargo run --release --example dss_analytics [scale_factor]
//! ```

use std::sync::Arc;

use turbopool::iosim::{Clk, SECOND};
use turbopool::workload::scenario::Design;
use turbopool::workload::tpch::{self, Tpch};

fn main() {
    let sf: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    println!(
        "TPC-H-lite power test, scale factor {sf} (~{:.0} GB equivalent)\n",
        sf as f64 * 1.5
    );

    let mut columns: Vec<(String, f64, f64)> = Vec::new();
    for (i, design) in [Design::NoSsd, Design::Lc].into_iter().enumerate() {
        tpch::reset_finish_time();
        let t = Arc::new(Tpch::setup(design, sf, 0.01));
        let mut clk = Clk::new();
        let p = t.power_test(&mut clk);
        for (j, (name, dur)) in p.timings.iter().enumerate() {
            let secs = *dur as f64 / SECOND as f64;
            if i == 0 {
                columns.push((name.clone(), secs, 0.0));
            } else {
                columns[j].2 = secs;
            }
        }
        println!(
            "{:>6}: Power@{sf}SF = {:.0}  (total virtual time {:.0}s)",
            design.label(),
            p.power,
            clk.now as f64 / SECOND as f64
        );
    }

    println!(
        "\n{:>5} {:>12} {:>12} {:>8}",
        "query", "noSSD (s)", "LC (s)", "speedup"
    );
    for (name, nossd, lc) in &columns {
        println!(
            "{name:>5} {nossd:>12.1} {lc:>12.1} {:>7.1}x",
            nossd / lc.max(1e-9)
        );
    }
    println!("\nScan-shaped queries (Q1, Q6, Q14, Q15) barely move; index-lookup queries");
    println!("(Q4, Q9, Q12, Q17-Q21) speed up by an order of magnitude once their random");
    println!("LINEITEM reads come from the SSD instead of the disk arms.");
}
