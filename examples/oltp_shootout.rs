//! OLTP shootout: the paper's headline TPC-C comparison in miniature.
//!
//! Runs the TPC-C-lite workload (2K-warehouse-equivalent database) under
//! all five configurations — noSSD, CW, DW, LC, TAC — for a few virtual
//! hours and prints the steady-state tpmC and speedups, like Figure 5
//! (a–c).
//!
//! ```sh
//! cargo run --release --example oltp_shootout [virtual_hours] [warehouses]
//! ```

use std::sync::Arc;

use turbopool::iosim::{HOUR, MINUTE};
use turbopool::workload::driver::{CleanerClient, Driver, ThroughputRecorder};
use turbopool::workload::scenario::Design;
use turbopool::workload::tpcc::Tpcc;

fn main() {
    let hours: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let warehouses: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    println!(
        "TPC-C-lite, {warehouses} scaled warehouses (~{} GB equivalent), {hours} virtual hours, λ=50%\n",
        warehouses * 10
    );
    println!(
        "{:>6}  {:>14}  {:>9}  {:>8}  {:>9}  {:>10}",
        "design", "tpmC (last h)", "speedup", "ssd hit%", "dirty hit%", "wall time"
    );

    let mut base = 0.0;
    for design in [
        Design::NoSsd,
        Design::Cw,
        Design::Dw,
        Design::Tac,
        Design::Lc,
    ] {
        // Wall clock on purpose (turbopool-lint allowlists this file):
        // reports how long the host takes to simulate each design, next
        // to the virtual-time throughput the simulation itself measures.
        let wall = std::time::Instant::now();
        let t = Arc::new(Tpcc::setup(design, warehouses, 0.5));
        let tpmc = ThroughputRecorder::new(6 * MINUTE);
        let mut driver = Driver::new();
        for c in 0..25 {
            driver.add(0, Box::new(t.client(c, Arc::clone(&tpmc))));
        }
        if let Some(cleaner) = CleanerClient::for_db(&t.db) {
            driver.add(0, Box::new(cleaner));
        }
        let dur = hours * HOUR;
        driver.run_until(dur);

        let rate = tpmc.rate_between(dur.saturating_sub(HOUR), dur, MINUTE);
        if base == 0.0 {
            base = rate;
        }
        let m = t.db.ssd_metrics().unwrap_or_default();
        println!(
            "{:>6}  {:>14.2}  {:>8.1}x  {:>7.0}%  {:>9.0}%  {:>9.1}s",
            design.label(),
            rate,
            rate / base.max(1e-9),
            m.hit_rate() * 100.0,
            m.dirty_hit_fraction() * 100.0,
            wall.elapsed().as_secs_f64(),
        );
    }
    println!("\nPaper (Figure 5b, 2K warehouses): DW 1.9x, LC 9.4x, TAC 1.4x over noSSD.");
    println!("The write-back design wins on update-intensive, skewed OLTP because dirty");
    println!("pages are re-referenced and re-dirtied in the SSD instead of going to disk.");
}
