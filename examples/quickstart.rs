//! Quickstart: open a database with an SSD-extended buffer pool, run a few
//! transactions, and inspect what the SSD cache did.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use turbopool::core::{SsdConfig, SsdDesign};
use turbopool::engine::{Database, DbConfig};
use turbopool::iosim::{Clk, Locality};

fn main() {
    // A small database: 8 KB pages, 4,096-page file group on the paper's
    // eight-disk array, a deliberately tiny 64-frame DRAM pool, and a
    // 1,024-frame SSD cache running the lazy-cleaning (write-back) design.
    let mut cfg = DbConfig::new(8192, 4096, 64);
    cfg.ssd = Some(SsdConfig::new(SsdDesign::LazyCleaning, 1024));
    let db = Database::open(cfg);
    let mut clk = Clk::new();

    // DDL: a table and its primary index.
    let users = db.create_heap(&mut clk, "users", 128, 512);
    let users_pk = db.create_index(&mut clk, "users_pk", 1024);

    // Insert 10,000 rows transactionally.
    for id in 0..10_000u64 {
        let mut txn = db.begin(&mut clk);
        let mut rec = [0u8; 128];
        rec[..8].copy_from_slice(&id.to_le_bytes());
        rec[8..16].copy_from_slice(&(id * 7).to_le_bytes());
        let rid = txn.heap_insert(users, &rec).expect("heap capacity");
        txn.index_insert(users_pk, id, rid);
        txn.commit();
    }

    // Point lookups: the 64-frame DRAM pool can't hold the working set, so
    // most of these are served by the SSD cache.
    let mut txn = db.begin(&mut clk);
    for id in (0..10_000u64).step_by(97) {
        let rid = txn.index_get(users_pk, id).expect("indexed");
        let rec = txn.heap_get(users, rid).expect("present");
        assert_eq!(u64::from_le_bytes(rec[8..16].try_into().unwrap()), id * 7);
    }
    txn.commit();

    // A sequential scan goes through read-ahead and stays OUT of the SSD
    // (the admission policy only caches randomly read pages).
    let mut rows = 0u64;
    db.scan_heap(&mut clk, users, |_, _| rows += 1).unwrap();
    assert_eq!(rows, 10_000);

    // Take a sharp checkpoint (flushes DRAM-dirty and SSD-dirty pages).
    let ckpt = db.checkpoint(&mut clk);

    let pool = db.pool_stats();
    let ssd = db.ssd_metrics().expect("SSD configured");
    println!("virtual time elapsed : {:.2}s", clk.now as f64 / 1e9);
    println!("checkpoint duration  : {:.3}s", ckpt as f64 / 1e9);
    println!("pool hit rate        : {:.1}%", pool.hit_rate() * 100.0);
    println!(
        "ssd hits / misses    : {} / {}",
        ssd.ssd_hits, ssd.ssd_misses
    );
    println!("ssd hit rate         : {:.1}%", ssd.hit_rate() * 100.0);
    println!("ssd admissions       : {}", ssd.admissions);
    println!(
        "policy rejections    : {} (sequential pages)",
        ssd.policy_rejections
    );
    println!(
        "dirty pages cleaned  : {}",
        ssd.checkpoint_cleaned + ssd.cleaned_pages
    );
    println!(
        "disk ops (r/w)       : {} / {}",
        db.io().disk_stats().read_ops,
        db.io().disk_stats().write_ops
    );
    println!(
        "ssd ops (r/w)        : {} / {}",
        db.io().ssd_stats().read_ops,
        db.io().ssd_stats().write_ops
    );

    // Crash and recover: committed data survives; the SSD cache restarts
    // cold (as in the paper, nothing on the SSD is reused after restart).
    let (db2, stats) = Database::recover(db.crash());
    println!(
        "recovery             : {} records scanned, {} writes redone",
        stats.records_scanned, stats.writes_applied
    );
    let mut clk = Clk::new();
    let mut txn = db2.begin(&mut clk);
    let rid = txn.index_get(users_pk, 4_242).expect("survived crash");
    let rec = txn.heap_get(users, rid).expect("survived crash");
    assert_eq!(
        u64::from_le_bytes(rec[8..16].try_into().unwrap()),
        4_242 * 7
    );
    txn.commit();
    println!("crash recovery check : OK");
    let _ = Locality::Random;
}
